"""Tests for the persistent worker pool (:mod:`repro.serve.pool`).

The pool is exercised directly (no asyncio front end): warm-image reuse,
crash detection and retry, the ``worker-lost`` terminal error, cooperative
deadlines, worker recycling, and the chaos property — under seeded
``worker_kill``/``slow_compile``/``torn_write`` faults, every job gets
exactly one terminal result and non-faulted results match a fault-free run
bit for bit.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.cache import sweep_cache
from repro.serve.pool import WorkerPool
from repro.serve.protocol import TERMINAL_KINDS

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
BLAME = "(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n"
SPIN = "(define (spin [n : int]) : int (spin n))\n(spin 0)\n"
IDENT = "((lambda ([x : int]) x) 42)\n"

#: (source, expected kind, expected value) for the chaos property.
PROGRAMS = [
    (SQUARE, "value", 36),
    (IDENT, "value", 42),
    (BLAME, "blame", None),
]


def job(source: str, **overrides) -> dict:
    base = {
        "op": "run_source",
        "source": source,
        "source_hash": None,
        "engine": "vm",
        "semantics": "coercion",
        "opt_level": 2,
        "fuel": None,
        "deadline_s": None,
        "cache_dir": None,
        "use_cache": True,
    }
    base.update(overrides)
    return base


class TestWorkerPool:
    def test_run_source_and_warm_memo(self):
        with WorkerPool(1) as pool:
            first = pool.execute(job(SQUARE))
            assert (first["kind"], first["value"]) == ("value", 36)
            assert first["type"] == "int"
            assert first["cache"] == "miss"
            # Same worker, same source: served straight from the resident
            # image memo — no cache read, no compile.
            second = pool.execute(job(SQUARE))
            assert second["cache"] == "warm"
            assert second["value"] == 36

    def test_blame_and_fuel_timeout(self):
        with WorkerPool(1) as pool:
            blamed = pool.execute(job(BLAME))
            assert blamed["kind"] == "blame" and "blame" in blamed
            spun = pool.execute(job(SPIN, fuel=1000))
            assert spun["kind"] == "timeout"

    def test_rvm_engine(self):
        with WorkerPool(1) as pool:
            result = pool.execute(job(SQUARE, engine="rvm"))
            assert (result["kind"], result["value"]) == ("value", 36)

    def test_front_end_error_is_an_error_result(self):
        with WorkerPool(1) as pool:
            result = pool.execute(job("(+ 1 #t)"))
            assert result["kind"] == "error" and result["error"]

    def test_unknown_source_hash_is_an_error(self):
        with WorkerPool(1) as pool:
            result = pool.execute(job(None, source_hash="ab" * 32))
            assert result["kind"] == "error"
            assert "not in the compile cache" in result["error"]

    def test_source_hash_alone_hits_a_warm_cache(self, tmp_path):
        from repro.compiler.serialize import source_fingerprint

        with WorkerPool(1, max_requests=1) as pool:  # recycle between runs
            pool.execute(job(SQUARE, cache_dir=str(tmp_path)))
            # A fresh worker, no source shipped: the hash finds the entry.
            result = pool.execute(job(
                None,
                source_hash=source_fingerprint(SQUARE),
                cache_dir=str(tmp_path),
            ))
            assert (result["kind"], result["value"]) == ("value", 36)
            assert result["cache"] == "hit"

    def test_cooperative_deadline_preserves_worker(self):
        with WorkerPool(1) as pool:
            slow = pool.execute(job(SPIN, fuel=10**12, deadline_s=0.2))
            assert slow["kind"] == "timeout"
            assert slow["reason"] == "deadline"
            # The worker survived (no crash, no respawn) and still serves.
            after = pool.execute(job(SQUARE))
            assert after["value"] == 36
            info = pool.info()
            assert info["crashes"] == 0 and info["alive"] == 1

    def test_crash_is_retried_and_succeeds(self):
        with WorkerPool(1, faults="worker_kill:1.0:1", backoff_s=0.01) as pool:
            result = pool.execute(job(SQUARE))
            assert (result["kind"], result["value"]) == ("value", 36)
            assert result["attempts"] == 2
            info = pool.info()
            assert info["crashes"] == 1 and info["retries"] == 1
            assert info["lost"] == 0 and info["alive"] == 1

    def test_worker_lost_after_retry_budget(self):
        with WorkerPool(1, faults="worker_kill:1.0", retries=1,
                        backoff_s=0.01) as pool:
            result = pool.execute(job(SQUARE))
            assert result["kind"] == "error"
            assert result["reason"] == "worker-lost"
            assert result["attempts"] == 2
            assert pool.info()["lost"] == 1
            # The pool itself survives its workers: faults keep firing, but
            # every subsequent job still gets a terminal result.
            again = pool.execute(job(SQUARE))
            assert again["reason"] == "worker-lost"

    def test_recycled_after_max_requests(self):
        with WorkerPool(1, max_requests=1) as pool:
            pool.execute(job(SQUARE))
            second = pool.execute(job(SQUARE))
            # The replacement worker has no resident image: it re-seeds
            # from the on-disk compile cache instead.
            assert second["cache"] == "hit"
            assert pool.info()["recycled"] >= 1

    def test_run_image_job(self, tmp_path):
        from repro.compiler.serialize import serialize_image, source_fingerprint
        from repro.compiler.vm import compile_term
        from repro.surface.interp import compile_source

        term, ty = compile_source(SQUARE)
        data = serialize_image(compile_term(term), static_type=ty,
                               source_hash=source_fingerprint(SQUARE))
        with WorkerPool(1) as pool:
            result = pool.execute(
                {"op": "run_image", "program": "sq", "image": data, "fuel": None}
            )
            assert (result["kind"], result["value"]) == ("value", 36)
            assert result["program"] == "sq"
            assert "load_s" in result and "run_s" in result

    def test_unknown_op_is_an_error(self):
        with WorkerPool(1) as pool:
            assert pool.execute({"op": "nope"})["kind"] == "error"

    def test_execute_after_shutdown_raises(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.execute(job(SQUARE))

    def test_faults_default_from_environment(self, monkeypatch):
        from repro.core.faults import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "worker_kill:1.0:1")
        with WorkerPool(1, backoff_s=0.01) as pool:
            result = pool.execute(job(SQUARE))
            assert result["value"] == 36 and result["attempts"] == 2


class TestChaosProperty:
    """Under seeded faults: every job one terminal result, non-faulted
    results identical to a fault-free run, no corrupt cache entries left."""

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        kill=st.sampled_from([0.0, 0.3, 1.0]),
        picks=st.lists(st.integers(min_value=0, max_value=len(PROGRAMS) - 1),
                       min_size=1, max_size=6),
    )
    def test_every_job_gets_one_terminal_result(self, seed, kill, picks):
        cache_dir = os.environ["REPRO_GRADUAL_CACHE_DIR"]
        spec = f"worker_kill:{kill},slow_compile:0.3:2,torn_write:0.5:2"
        with WorkerPool(1, faults=spec, seed=seed, retries=2,
                        backoff_s=0.01) as pool:
            for index in picks:
                source, expected_kind, expected_value = PROGRAMS[index]
                result = pool.execute(job(source, cache_dir=cache_dir))
                assert result["kind"] in TERMINAL_KINDS
                if result["kind"] == "error":
                    # Only injected crashes produce errors for these programs.
                    assert result["reason"] == "worker-lost"
                else:
                    assert result["kind"] == expected_kind
                    if expected_value is not None:
                        assert result["value"] == expected_value
        # Whatever torn writes the run injected, a sweep leaves the cache
        # clean — and entries that survive all load.
        _kept, removed = sweep_cache(cache_dir)
        assert sweep_cache(cache_dir)[1] == 0
