"""Tests for the bisimulations between the calculi (Propositions 11 and 16)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.labels import label
from repro.core.terms import App, Cast, Lam, Op, Var, const_int
from repro.core.types import BOOL, DYN, INT, FunType
from repro.gen.programs import (
    even_odd_boundary,
    fib_boundary,
    let_chain_boundary,
    pair_boundary_swap,
    safe_boundary_program,
    tail_countdown_boundary,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.properties.bisimulation import (
    check_lockstep_b_c,
    check_outcomes_b_c_s,
    check_outcomes_c_s,
    check_vm_oracle,
)
from repro.translate.b_to_c import term_to_lambda_c

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")


class TestLockstepBisimulation:
    """Proposition 11: λB and λC run in lockstep under |·|BC."""

    def test_first_order_round_trip(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q)
        assert check_lockstep_b_c(term)

    def test_failing_round_trip(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q)
        assert check_lockstep_b_c(term)

    def test_higher_order_proxy(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        proxied = Cast(Cast(double, FunType(INT, INT), DYN, P), DYN, FunType(INT, INT), Q)
        assert check_lockstep_b_c(App(proxied, const_int(5)))

    def test_factoring_steps_match(self):
        term = Cast(Lam("x", INT, Var("x")), FunType(INT, INT), DYN, P)
        assert check_lockstep_b_c(App(Cast(term, DYN, FunType(INT, INT), Q), const_int(1)))

    @given(lambda_b_programs())
    def test_lockstep_on_generated_programs(self, program):
        term, _ = program
        report = check_lockstep_b_c(term, fuel=4_000)
        assert report.ok, report.reason

    def test_lockstep_on_the_boundary_workloads(self):
        for program in (
            even_odd_boundary(5),
            typed_loop_untyped_step(3),
            twice_boundary(2),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            safe_boundary_program(),
            pair_boundary_swap(),
        ):
            report = check_lockstep_b_c(program, fuel=4_000)
            assert report.ok, report.reason


class TestOutcomeBisimulationCS:
    """Proposition 16: λC and λS agree observationally (not lockstep)."""

    def test_round_trips(self):
        for term_b in (
            Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q),
            Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q),
        ):
            report = check_outcomes_c_s(term_to_lambda_c(term_b))
            assert report.ok, report.reason

    def test_step_counts_differ_but_outcomes_agree(self):
        term_b = even_odd_boundary(6)
        report = check_outcomes_c_s(term_to_lambda_c(term_b))
        assert report.ok
        # λS takes extra merge steps; λC takes extra composition-splitting steps.
        assert report.steps_left != 0 and report.steps_right != 0

    @given(lambda_b_programs())
    def test_outcomes_on_generated_programs(self, program):
        term, _ = program
        report = check_outcomes_c_s(term_to_lambda_c(term), fuel=30_000)
        assert report.ok, report.reason

    def test_transient_chain_through_a_dissolving_let(self):
        """Regression: a let that binds a coerced value and is used under a
        coercion, itself sitting under a program coercion.  When the let
        dissolves, three previously separated chains fuse into ``2·static + 1``
        adjacent coercions for one step before the priority merges collapse
        them — the space checker must tolerate exactly that transient."""
        from repro.core.terms import Let

        inner = Let(
            "f",
            Cast(Lam("x", BOOL, Var("x")), FunType(BOOL, BOOL), FunType(BOOL, BOOL), P),
            Cast(Var("f"), FunType(BOOL, BOOL), DYN, Q),
        )
        program = App(
            Cast(inner, DYN, FunType(INT, DYN), label("r")),
            const_int(3),
        )
        report = check_outcomes_c_s(term_to_lambda_c(program), fuel=5_000)
        assert report.ok, report.reason

    def test_outcomes_on_the_boundary_workloads(self):
        for program in (
            even_odd_boundary(8),
            typed_loop_untyped_step(4),
            fib_boundary(6),
            twice_boundary(3),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            pair_boundary_swap(),
        ):
            report = check_outcomes_c_s(term_to_lambda_c(program), fuel=60_000)
            assert report.ok, report.reason


class TestVMOracle:
    """The bytecode VM against its oracles: the CEK machine and the reducers."""

    def test_vm_oracle_on_the_boundary_workloads(self):
        for program in (
            even_odd_boundary(8),
            typed_loop_untyped_step(4),
            fib_boundary(6),
            twice_boundary(3),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            safe_boundary_program(),
            pair_boundary_swap(),
        ):
            report = check_vm_oracle(program)
            assert report.ok, report.reason

    def test_vm_oracle_on_the_vm_stress_shapes(self):
        # The let-heavy and deep tail-recursive generators added for the VM.
        for program in (
            tail_countdown_boundary(40),
            tail_countdown_boundary(0),
            let_chain_boundary(30),
            let_chain_boundary(0),
        ):
            report = check_vm_oracle(program)
            assert report.ok, report.reason

    @given(lambda_b_programs())
    @settings(max_examples=30)
    def test_vm_oracle_on_generated_programs(self, program):
        term, _ = program
        report = check_vm_oracle(term)
        assert report.ok, report.reason


class TestThreeWayAgreement:
    @given(lambda_b_programs())
    @settings(max_examples=30)
    def test_all_three_calculi_agree_on_generated_programs(self, program):
        term, _ = program
        report = check_outcomes_b_c_s(term, fuel=30_000)
        assert report.ok, report.reason

    def test_all_three_calculi_agree_on_blame_scenarios(self):
        for program in (untyped_library_bad_result(), untyped_client_bad_argument()):
            report = check_outcomes_b_c_s(program, fuel=10_000)
            assert report.ok, report.reason
