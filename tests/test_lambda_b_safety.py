"""Tests for λB blame safety (Figure 2, Proposition 5) at the term level."""

from __future__ import annotations

from repro.core.labels import label
from repro.core.terms import App, Blame, Cast, Lam, Op, Var, const_bool, const_int
from repro.core.types import BOOL, DYN, INT, FunType
from repro.gen.programs import (
    safe_boundary_program,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_b.reduction import run
from repro.lambda_b.safety import cast_is_safe, safe_labels_among, term_safe_for, unsafe_labels

P = label("p")
Q = label("q")
I2I = FunType(INT, INT)


class TestCastSafety:
    def test_injection_is_safe_for_its_label(self):
        cast = Cast(const_int(1), INT, DYN, P)
        assert cast_is_safe(cast, P)

    def test_projection_is_unsafe_for_its_label_but_safe_for_the_complement(self):
        cast = Cast(Cast(const_int(1), INT, DYN, Q), DYN, INT, P)
        assert not cast_is_safe(cast, P)
        assert cast_is_safe(cast, P.complement())

    def test_any_cast_is_safe_for_unrelated_labels(self):
        cast = Cast(const_int(1), INT, DYN, P)
        assert cast_is_safe(cast, Q)
        assert cast_is_safe(cast, Q.complement())

    def test_higher_order_export_is_safe_positively_but_not_negatively(self):
        # int→int <:+ ?  but not  int→int <:− ?  (the context may pass a bad argument).
        cast = Cast(Lam("x", INT, Var("x")), I2I, DYN, P)
        assert cast_is_safe(cast, P)
        assert not cast_is_safe(cast, P.complement())


class TestTermSafety:
    def test_term_safety_collects_all_casts(self):
        term = Op(
            "+",
            (
                Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q),
                const_int(1),
            ),
        )
        assert term_safe_for(term, P)           # injection cannot blame p
        assert not term_safe_for(term, Q)       # the projection may blame q
        assert term_safe_for(term, Q.complement())

    def test_blame_nodes_make_a_term_unsafe_for_that_label(self):
        assert not term_safe_for(Blame(P), P)
        assert term_safe_for(Blame(P), Q)

    def test_unsafe_labels_of_a_projection(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q)
        assert Q in unsafe_labels(term)
        assert P not in unsafe_labels(term)

    def test_safe_labels_among(self):
        # A first-order injection can blame neither side: int <:+ ? and int <:− ?.
        injection = Cast(const_int(1), INT, DYN, P)
        labels = {P, P.complement(), Q}
        assert safe_labels_among(injection, labels) == {P, P.complement(), Q}
        # A projection may blame its own label but never the complement.
        projection = Cast(injection, DYN, INT, Q)
        assert safe_labels_among(projection, {Q, Q.complement()}) == {Q.complement()}


class TestWellTypedProgramsCantBeBlamed:
    """End-to-end checks of the slogan on the library/client scenarios."""

    def test_positive_blame_falls_on_the_untyped_library(self):
        program = untyped_library_bad_result("boundary")
        outcome = run(program)
        assert outcome.is_blame
        assert outcome.label == label("boundary")
        # The typed client's side of the contract (negative blame) is safe.
        assert term_safe_for(program, label("boundary").complement())

    def test_negative_blame_falls_on_the_untyped_client(self):
        program = untyped_client_bad_argument("boundary")
        outcome = run(program)
        assert outcome.is_blame
        assert outcome.label == label("boundary").complement()
        # The typed library's side of the contract (positive blame) is safe.
        assert term_safe_for(program, label("boundary"))

    def test_casts_from_precise_types_never_blame(self):
        program = safe_boundary_program("boundary")
        assert term_safe_for(program, label("boundary"))
        outcome = run(program)
        assert outcome.is_value

    def test_statically_safe_labels_are_never_blamed_at_runtime(self):
        for program in (
            untyped_library_bad_result("b"),
            untyped_client_bad_argument("b"),
            safe_boundary_program("b"),
        ):
            outcome = run(program)
            if outcome.is_blame:
                assert not term_safe_for(program, outcome.label)
