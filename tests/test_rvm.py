"""Tests for the register IR and the register VM (the ``rvm`` engine).

The contract under test: register allocation is *invisible* except for
speed.  Stack bytecode converted to packed register streams must agree
with the stack VM on every observable — projected values, blame labels,
timeouts, and the space profile (``max_pending_mediators`` and
``max_pending_size``) — under both mediator backends at both ``-O0`` and
``-O2``; register disassembly round-trips through its parser; ``.gradb``
images carry register code at format v2 and reject older versions with a
clear error; and the compile cache keys the IR so register images never
collide with stack images of the same source.
"""

from __future__ import annotations

import json
import zlib

import pytest
from hypothesis import given, settings

from repro.cli import main as cli_main
from repro.compiler import (
    FORMAT_VERSION,
    GRADB_MAGIC,
    ImageError,
    cache_path,
    cached_compile,
    compile_registers,
    compile_term,
    deserialize_image,
    disassemble_registers,
    load_image,
    parse_register_disassembly,
    register_streams,
    run_code,
    run_on_rvm,
    run_on_vm,
    run_rcode,
    save_image,
    serialize_image,
    source_fingerprint,
)
from repro.gen.programs import (
    deep_cast_chain,
    even_odd_boundary,
    pair_boundary_swap,
    tail_countdown_boundary,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.machine import MEDIATORS
from repro.surface.interp import compile_source, run_source

from .strategies import lambda_b_programs

WORKLOADS = {
    "even_odd": even_odd_boundary(60),
    "typed_loop": typed_loop_untyped_step(40),
    "tail_countdown": tail_countdown_boundary(80),
    "twice": twice_boundary(8),
    "pair_swap": pair_boundary_swap(),
    "bad_result": untyped_library_bad_result(),
    "bad_arg": untyped_client_bad_argument(),
    "deep_chain": deep_cast_chain(6),
}

OPT_LEVELS = (0, 2)

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"


def _assert_same_outcome(rvm, vm) -> None:
    """Register and stack runs must be observably identical, space included."""
    assert rvm.kind == vm.kind
    if vm.is_value:
        assert rvm.python_value() == vm.python_value()
    if vm.is_blame:
        assert rvm.label == vm.label
    rstats, sstats = rvm.stats or {}, vm.stats or {}
    assert rstats.get("max_pending_mediators") == sstats.get("max_pending_mediators")
    assert rstats.get("max_pending_size") == sstats.get("max_pending_size")


# ---------------------------------------------------------------------------
# rvm against the stack VM
# ---------------------------------------------------------------------------


class TestAgreement:
    @pytest.mark.parametrize("mediator", MEDIATORS)
    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads_agree(self, name, mediator, opt_level):
        term = WORKLOADS[name]
        rvm = run_on_rvm(term, mediator=mediator, opt_level=opt_level)
        vm = run_on_vm(term, mediator=mediator, opt_level=opt_level)
        _assert_same_outcome(rvm, vm)

    @settings(max_examples=40, deadline=None)
    @given(lambda_b_programs())
    def test_generated_programs_agree_both_mediators(self, program):
        term, _ = program
        for mediator in MEDIATORS:
            rvm = run_on_rvm(term, mediator=mediator)
            vm = run_on_vm(term, mediator=mediator)
            _assert_same_outcome(rvm, vm)

    def test_timeouts_report_uniformly(self):
        outcome = run_on_rvm(even_odd_boundary(4000), fuel=500)
        assert outcome.is_timeout
        assert outcome.stats["steps"] == 500


class TestSpaceGuarantee:
    @pytest.mark.parametrize("mediator", MEDIATORS)
    def test_boundary_tail_loops_hold_one_pending_mediator(self, mediator):
        """The λS guarantee survives register compilation: the pending
        footprint is at most 1 (composed, never stacked — at ``-O2`` the
        optimizer may statically elide it to 0, as the stack VM does) and
        *constant in the iteration count*."""
        for build in (even_odd_boundary, tail_countdown_boundary):
            small = run_on_rvm(build(60), mediator=mediator)
            large = run_on_rvm(build(400), mediator=mediator)
            assert small.stats["max_pending_mediators"] <= 1
            assert (small.stats["max_pending_mediators"]
                    == large.stats["max_pending_mediators"])
            assert (small.stats["max_pending_size"]
                    == large.stats["max_pending_size"])
            # At -O0 nothing is elided: the raw boundary loop holds exactly
            # one composed pending mediator, never a stack of them.
            raw = run_on_rvm(build(60), mediator=mediator, opt_level=0)
            assert raw.stats["max_pending_mediators"] == 1


# ---------------------------------------------------------------------------
# Register disassembly round trip
# ---------------------------------------------------------------------------


class TestDisassembly:
    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_round_trips_through_parser(self, opt_level):
        for term in WORKLOADS.values():
            rcode = compile_registers(compile_term(term, opt_level=opt_level))
            text = disassemble_registers(rcode)
            assert parse_register_disassembly(text) == register_streams(rcode)

    @settings(max_examples=25, deadline=None)
    @given(lambda_b_programs())
    def test_generated_programs_round_trip(self, program):
        term, _ = program
        rcode = compile_registers(compile_term(term))
        text = disassemble_registers(rcode)
        assert parse_register_disassembly(text) == register_streams(rcode)


# ---------------------------------------------------------------------------
# Register .gradb images (format v2)
# ---------------------------------------------------------------------------


class TestRegisterImages:
    def _compile(self, mediator="coercion", opt_level=2):
        term, ty = compile_source(SQUARE)
        return compile_term(term, mediator=mediator, opt_level=opt_level), ty

    @pytest.mark.parametrize("mediator", MEDIATORS)
    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_register_image_round_trips_and_runs(self, tmp_path, mediator, opt_level):
        code, ty = self._compile(mediator, opt_level)
        path = tmp_path / "square.gradb"
        save_image(code, path, static_type=ty, ir="register")
        image = load_image(path)
        assert image.info.ir == "register"
        assert image.rcode is not None
        _assert_same_outcome(run_rcode(image.rcode),
                             run_code(image.code))
        _assert_same_outcome(run_rcode(image.rcode),
                             run_rcode(compile_registers(code)))

    def test_stack_images_load_without_register_code(self, tmp_path):
        code, ty = self._compile()
        path = tmp_path / "square.gradb"
        save_image(code, path, static_type=ty)
        image = load_image(path)
        assert image.info.ir == "stack"
        assert image.rcode is None

    def test_old_format_version_is_rejected_with_a_clear_error(self):
        code, _ = self._compile()
        data = serialize_image(code, ir="register")
        assert data[len(GRADB_MAGIC)] == FORMAT_VERSION  # single-byte varint
        patched = bytearray(data)
        patched[len(GRADB_MAGIC)] = 1  # a v1 image from an older toolchain
        body = bytes(patched[:-4])
        with pytest.raises(ImageError, match=r"version mismatch.*v1.*v2"):
            deserialize_image(body + zlib.crc32(body).to_bytes(4, "big"))

    def test_truncated_register_section_is_rejected(self):
        code, _ = self._compile()
        data = serialize_image(code, ir="register")
        stack_only = serialize_image(code, ir="stack")
        # Cutting inside the register sections (past the stack payload) must
        # fail the checksum, not return a half-parsed image.
        cut = len(stack_only) + (len(data) - len(stack_only)) // 2
        with pytest.raises(ImageError):
            deserialize_image(data[:cut])


class TestCacheIRKey:
    def test_ir_is_an_axis_of_the_cache_key(self, tmp_path):
        source_hash = source_fingerprint(SQUARE)
        stack = cache_path(source_hash, 2, "coercion", tmp_path, ir="stack")
        register = cache_path(source_hash, 2, "coercion", tmp_path, ir="register")
        assert stack != register

    def test_cached_compile_register_hits_with_register_code(self, tmp_path):
        term, ty = compile_source(SQUARE)
        miss = cached_compile(term, static_type=ty, cache_dir=tmp_path, ir="register")
        assert miss.status == "miss"
        assert miss.image.rcode is not None
        hit = cached_compile(term, static_type=ty, cache_dir=tmp_path, ir="register")
        assert hit.status == "hit"
        assert hit.image.info.ir == "register"
        _assert_same_outcome(run_rcode(hit.image.rcode),
                             run_rcode(miss.image.rcode))

    def test_run_source_warm_rvm_equals_cold(self, tmp_path):
        cold = run_source(SQUARE, engine="rvm", cache=True, cache_dir=str(tmp_path))
        warm = run_source(SQUARE, engine="rvm", cache=True, cache_dir=str(tmp_path))
        assert (warm.kind, warm.value, str(warm.type)) == (
            cold.kind, cold.value, str(cold.type))
        assert warm.engine == "rvm"


# ---------------------------------------------------------------------------
# CLI: --engine rvm, --profile, compile --ir
# ---------------------------------------------------------------------------


@pytest.fixture
def square_program(tmp_path):
    path = tmp_path / "square.grad"
    path.write_text(SQUARE)
    return str(path)


class TestCLI:
    def test_run_engine_rvm(self, square_program, capsys):
        assert cli_main(["run", square_program, "--engine", "rvm",
                         "--no-cache", "--show-space"]) == 0
        out = capsys.readouterr().out
        assert "36 : int" in out
        assert "pending-mediators max=" in out

    @pytest.mark.parametrize("engine", ["vm", "rvm"])
    def test_profile_dumps_json_to_stderr(self, square_program, capsys, engine):
        assert cli_main(["run", square_program, "--engine", engine,
                         "--no-cache", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "36 : int" in captured.out
        profile = json.loads(captured.err)
        assert profile["engine"] == engine
        assert profile["dispatches"] == sum(profile["opcodes"].values()) > 0
        assert set(profile["inline_cache"]) == {"hits", "misses", "hit_rate"}

    def test_profile_rejects_subst_engine(self, square_program, capsys):
        assert cli_main(["run", square_program, "--engine", "subst",
                         "--profile"]) == 2
        assert "--profile" in capsys.readouterr().err

    def test_profile_covers_machine_engine(self, square_program, capsys):
        # The CEK machine has no opcode stream, but the metrics-backed
        # profile (space stats + phase timings) applies to it too.
        assert cli_main(["run", square_program, "--engine", "machine",
                         "--profile"]) == 0
        captured = capsys.readouterr()
        assert "36 : int" in captured.out
        profile = json.loads(captured.err)
        assert profile["engine"] == "machine"
        assert "opcodes" not in profile
        assert "steps" in profile["space"]
        assert "run" in profile["metrics"]["phases"]

    def test_compile_ir_register_prints_rcode_streams(self, square_program, capsys):
        assert cli_main(["compile", square_program, "--ir", "register"]) == 0
        text = capsys.readouterr().out
        assert text.startswith("rcode 0")
        assert parse_register_disassembly(text)

    def test_register_image_runs_on_the_rvm(self, square_program, tmp_path, capsys):
        image = str(tmp_path / "square.gradb")
        assert cli_main(["compile", square_program, "--ir", "register",
                         "-o", image]) == 0
        capsys.readouterr()
        assert cli_main(["run", image]) == 0
        assert "36 : int" in capsys.readouterr().out
        # The image fixed its engine at compile time: vm is a contradiction,
        # rvm merely redundant.
        assert cli_main(["run", image, "--engine", "vm"]) == 2
        assert "--engine" in capsys.readouterr().err
        assert cli_main(["run", image, "--engine", "rvm"]) == 0
