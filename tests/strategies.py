"""Hypothesis strategies for types, labels, coercions, and terms."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.labels import Label
from repro.core.types import BOOL, DYN, INT, FunType, ProdType
from repro.gen.coercions_gen import (
    random_coercion,
    random_composable_space_pair,
    random_space_coercion,
)
from repro.gen.terms_gen import TermGenerator
from repro.gen.types_gen import random_compatible_type, random_type

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

base_types = st.sampled_from([INT, BOOL, DYN])


def types(max_depth: int = 3, products: bool = True):
    """Structural strategy for types."""
    leaves = st.sampled_from([INT, BOOL, DYN])

    def extend(children):
        branches = [st.builds(FunType, children, children)]
        if products:
            branches.append(st.builds(ProdType, children, children))
        return st.one_of(*branches)

    return st.recursive(leaves, extend, max_leaves=2 ** max_depth)


labels = st.builds(
    Label,
    st.sampled_from(["p", "q", "r", "s1", "s2"]),
    st.booleans(),
)

positive_labels = st.builds(Label, st.sampled_from(["p", "q", "r"]), st.just(True))


@st.composite
def compatible_type_pairs(draw, max_depth: int = 3):
    """A pair of compatible types (valid as a cast's source and target)."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    source = random_type(rng, max_depth)
    target = random_compatible_type(rng, source, max_depth)
    return source, target


# ---------------------------------------------------------------------------
# Coercions
# ---------------------------------------------------------------------------


@st.composite
def lambda_c_coercions(draw, length: int = 3, depth: int = 3):
    """A random well-typed λC coercion with its source and target types."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    return random_coercion(rng, length=length, depth=depth)


@st.composite
def space_coercions(draw, length: int = 3, depth: int = 3):
    """A random canonical coercion with its source and target types."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    return random_space_coercion(rng, length=length, depth=depth)


@st.composite
def composable_space_coercions(draw, length: int = 2, depth: int = 3):
    """Two canonical coercions s : A ⇒ B and t : B ⇒ C."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    return random_composable_space_pair(rng, length=length, depth=depth)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@st.composite
def lambda_b_programs(draw, max_depth: int = 4):
    """A random closed well-typed λB program together with its type."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    generator = TermGenerator(random.Random(seed), max_depth=max_depth)
    return generator.program()
