"""Tests for the type structure: ground types, compatibility, grounding (Lemma 1)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.types import (
    BOOL,
    DYN,
    GROUND_FUN,
    GROUND_PROD,
    INT,
    STR,
    UNIT,
    UNKNOWN,
    BaseType,
    DynType,
    FunType,
    ProdType,
    all_types,
    compatible,
    ground_of,
    grounds_to,
    is_base,
    is_dyn,
    is_ground,
    needs_ground_factoring,
    subterms,
    type_height,
    type_size,
    type_to_str,
    types_equal,
)

from .strategies import compatible_type_pairs, types


class TestTypeConstruction:
    def test_base_types_are_distinct(self):
        assert INT != BOOL
        assert INT != STR
        assert BOOL != UNIT

    def test_structural_equality(self):
        assert FunType(INT, BOOL) == FunType(INT, BOOL)
        assert ProdType(INT, BOOL) == ProdType(INT, BOOL)
        assert FunType(INT, BOOL) != FunType(BOOL, INT)

    def test_dyn_is_a_singleton_value(self):
        assert DynType() == DYN

    def test_types_are_hashable(self):
        seen = {INT, DYN, FunType(INT, DYN), ProdType(DYN, DYN)}
        assert FunType(INT, DYN) in seen

    def test_function_types_nest(self):
        higher = FunType(FunType(INT, INT), BOOL)
        assert higher.dom == FunType(INT, INT)
        assert higher.cod == BOOL


class TestGroundTypes:
    def test_base_types_are_ground(self):
        for base in (INT, BOOL, STR, UNIT):
            assert is_ground(base)

    def test_dynamic_type_is_not_ground(self):
        assert not is_ground(DYN)

    def test_ground_function_type(self):
        assert is_ground(GROUND_FUN)
        assert not is_ground(FunType(INT, DYN))
        assert not is_ground(FunType(DYN, INT))

    def test_ground_product_type(self):
        assert is_ground(GROUND_PROD)
        assert not is_ground(ProdType(INT, DYN))

    def test_grounding_of_base(self):
        assert ground_of(INT) == INT

    def test_grounding_of_function(self):
        assert ground_of(FunType(INT, BOOL)) == GROUND_FUN
        assert ground_of(FunType(DYN, DYN)) == GROUND_FUN

    def test_grounding_of_product(self):
        assert ground_of(ProdType(INT, DYN)) == GROUND_PROD

    def test_grounding_of_dyn_is_an_error(self):
        with pytest.raises(ValueError):
            ground_of(DYN)

    def test_grounds_to(self):
        assert grounds_to(FunType(INT, INT), GROUND_FUN)
        assert not grounds_to(FunType(INT, INT), INT)
        assert not grounds_to(DYN, GROUND_FUN)

    def test_needs_ground_factoring(self):
        assert needs_ground_factoring(FunType(INT, INT))
        assert not needs_ground_factoring(GROUND_FUN)
        assert not needs_ground_factoring(INT)
        assert not needs_ground_factoring(DYN)

    @given(types(max_depth=3))
    def test_grounding_lemma_part1(self, ty):
        """Lemma 1(1): every A ≠ ? is compatible with a unique ground type."""
        if is_dyn(ty):
            return
        ground = ground_of(ty)
        assert is_ground(ground)
        assert compatible(ty, ground)
        # Uniqueness: no other ground type of our universe is compatible.
        for other in (INT, BOOL, STR, UNIT, GROUND_FUN, GROUND_PROD):
            if other != ground:
                assert not compatible(ty, other)

    def test_grounding_lemma_part2(self):
        """Lemma 1(2): two ground types are compatible iff they are equal."""
        grounds = [INT, BOOL, STR, UNIT, GROUND_FUN, GROUND_PROD]
        for g in grounds:
            for h in grounds:
                assert compatible(g, h) == (g == h)


class TestCompatibility:
    def test_dyn_is_compatible_with_everything(self):
        for ty in (INT, BOOL, FunType(INT, BOOL), ProdType(DYN, INT), DYN):
            assert compatible(DYN, ty)
            assert compatible(ty, DYN)

    def test_base_compatibility_is_equality(self):
        assert compatible(INT, INT)
        assert not compatible(INT, BOOL)

    def test_function_compatibility_is_componentwise(self):
        assert compatible(FunType(INT, BOOL), FunType(DYN, BOOL))
        assert compatible(FunType(INT, BOOL), FunType(INT, DYN))
        assert not compatible(FunType(INT, BOOL), FunType(BOOL, BOOL))

    def test_product_compatibility_is_componentwise(self):
        assert compatible(ProdType(INT, BOOL), ProdType(DYN, DYN))
        assert not compatible(ProdType(INT, BOOL), ProdType(BOOL, BOOL))

    def test_function_never_compatible_with_base(self):
        assert not compatible(FunType(DYN, DYN), INT)
        assert not compatible(INT, GROUND_FUN)

    def test_function_never_compatible_with_product(self):
        assert not compatible(GROUND_FUN, GROUND_PROD)

    @given(types(max_depth=3))
    def test_compatibility_is_reflexive(self, ty):
        assert compatible(ty, ty)

    @given(compatible_type_pairs())
    def test_compatibility_is_symmetric(self, pair):
        a, b = pair
        assert compatible(a, b)
        assert compatible(b, a)

    def test_compatibility_is_not_transitive(self):
        # int ~ ? and ? ~ bool, but int is not compatible with bool.
        assert compatible(INT, DYN) and compatible(DYN, BOOL)
        assert not compatible(INT, BOOL)

    def test_unknown_wildcard_matches_everything(self):
        assert types_equal(UNKNOWN, INT)
        assert types_equal(FunType(INT, UNKNOWN), FunType(INT, BOOL))
        assert compatible(UNKNOWN, FunType(INT, BOOL))


class TestMetricsAndEnumeration:
    def test_type_height(self):
        assert type_height(INT) == 1
        assert type_height(DYN) == 1
        assert type_height(FunType(INT, INT)) == 2
        assert type_height(FunType(FunType(INT, INT), INT)) == 3
        assert type_height(ProdType(INT, FunType(INT, INT))) == 3

    def test_type_size(self):
        assert type_size(INT) == 1
        assert type_size(FunType(INT, BOOL)) == 3
        assert type_size(ProdType(FunType(INT, BOOL), DYN)) == 5

    def test_subterms(self):
        ty = FunType(INT, ProdType(DYN, BOOL))
        parts = list(subterms(ty))
        assert ty in parts and INT in parts and DYN in parts and BOOL in parts
        assert len(parts) == 5

    def test_all_types_depth_one(self):
        assert set(all_types(1)) == {DYN, INT, BOOL}

    def test_all_types_depth_two_contains_functions(self):
        enumerated = all_types(2)
        assert FunType(INT, BOOL) in enumerated
        assert FunType(DYN, DYN) in enumerated
        assert len(enumerated) == 3 + 9

    def test_all_types_with_products(self):
        enumerated = all_types(2, include_products=True)
        assert ProdType(INT, DYN) in enumerated

    def test_all_types_has_no_duplicates(self):
        enumerated = all_types(3)
        assert len(enumerated) == len(set(enumerated))


class TestPrettyPrinting:
    def test_base_and_dyn(self):
        assert type_to_str(INT) == "int"
        assert type_to_str(DYN) == "?"

    def test_function_arrows(self):
        assert type_to_str(FunType(INT, BOOL)) == "int -> bool"
        assert type_to_str(FunType(FunType(INT, INT), BOOL)) == "(int -> int) -> bool"
        assert type_to_str(FunType(INT, FunType(INT, BOOL))) == "int -> int -> bool"

    def test_products(self):
        assert type_to_str(ProdType(INT, BOOL)) == "int * bool"
        assert type_to_str(ProdType(FunType(INT, INT), DYN)) == "(int -> int) * ?"

    def test_str_dunder(self):
        assert str(GROUND_FUN) == "? -> ?"
