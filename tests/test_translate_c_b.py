"""Tests for the reverse translation |·|CB from λC to λB (Figure 4) and Lemma 8."""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import BULLET, label
from repro.core.terms import Cast, Coerce, Lam, Op, Var, const_int
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType, ProdType, types_equal
from repro.lambda_b.typecheck import type_of as type_b
from repro.lambda_c.coercions import (
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)
from repro.lambda_c.typecheck import type_of as type_c
from repro.properties.calculi import LAMBDA_B, LAMBDA_C
from repro.properties.equivalence import contextually_equivalent, kleene_equivalent
from repro.translate.b_to_c import term_to_lambda_c
from repro.translate.c_to_b import (
    CastSpec,
    apply_cast_sequence,
    arrow_left,
    arrow_right,
    coercion_to_casts,
    concat,
    reverse_complement,
    term_to_lambda_b,
)

from .strategies import lambda_c_coercions

P = label("p")
Q = label("q")


class TestSequenceCombinators:
    def test_reverse_complement(self):
        seq = (CastSpec(INT, P, DYN), CastSpec(DYN, Q, BOOL))
        reversed_seq = reverse_complement(seq)
        assert reversed_seq == (
            CastSpec(BOOL, Q.complement(), DYN),
            CastSpec(DYN, P.complement(), INT),
        )

    def test_reverse_complement_is_involutive(self):
        seq = (CastSpec(INT, P, DYN), CastSpec(DYN, Q, BOOL))
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_arrow_right_and_left(self):
        seq = (CastSpec(INT, P, DYN),)
        assert arrow_right(seq, BOOL) == (CastSpec(FunType(INT, BOOL), P, FunType(DYN, BOOL)),)
        assert arrow_left(BOOL, seq) == (CastSpec(FunType(BOOL, INT), P, FunType(BOOL, DYN)),)

    def test_concat_checks_the_meeting_type(self):
        first = (CastSpec(INT, P, DYN),)
        second = (CastSpec(DYN, Q, BOOL),)
        assert concat(first, second) == first + second
        from repro.core.errors import TypeCheckError
        import pytest

        with pytest.raises(TypeCheckError):
            concat(first, (CastSpec(BOOL, Q, DYN),))


class TestCoercionToCasts:
    def test_identity_translates_to_the_empty_sequence(self):
        assert coercion_to_casts(Identity(INT)) == ()

    def test_injection_uses_the_bullet_label(self):
        assert coercion_to_casts(Inject(INT)) == (CastSpec(INT, BULLET, DYN),)

    def test_projection_keeps_its_label(self):
        assert coercion_to_casts(Project(INT, P)) == (CastSpec(DYN, P, INT),)

    def test_sequence_concatenates(self):
        seq = coercion_to_casts(Sequence(Inject(INT), Project(BOOL, P)))
        assert seq == (CastSpec(INT, BULLET, DYN), CastSpec(DYN, P, BOOL))

    def test_function_coercion_splits_into_domain_and_codomain_casts(self):
        # (int?p → int!) : int→int ⇒ ?→?
        coercion = FunCoercion(Project(INT, P), Inject(INT))
        seq = coercion_to_casts(coercion)
        # Domain part: reverse-complemented projection lifted to function types.
        assert seq[0] == CastSpec(FunType(INT, INT), P.complement(), FunType(DYN, INT))
        # Codomain part: the injection on the result side.
        assert seq[1] == CastSpec(FunType(DYN, INT), BULLET, FunType(DYN, DYN))
        assert len(seq) == 2

    def test_product_coercion_splits_covariantly(self):
        coercion = ProdCoercion(Inject(INT), Inject(BOOL))
        seq = coercion_to_casts(coercion)
        assert seq == (
            CastSpec(ProdType(INT, BOOL), BULLET, ProdType(DYN, BOOL)),
            CastSpec(ProdType(DYN, BOOL), BULLET, ProdType(DYN, DYN)),
        )

    def test_fail_expands_to_the_lemma2_sequence(self):
        fail = Fail(INT, P, BOOL, source=INT, target=BOOL)
        seq = coercion_to_casts(fail)
        assert seq == (
            CastSpec(INT, BULLET, DYN),
            CastSpec(DYN, P, BOOL),
        ) or seq == (
            CastSpec(INT, BULLET, INT),
            CastSpec(INT, BULLET, DYN),
            CastSpec(DYN, P, BOOL),
            CastSpec(BOOL, BULLET, BOOL),
        )

    def test_fail_with_incompatible_target_routes_through_dyn(self):
        fail = Fail(INT, P, BOOL, source=INT, target=INT)
        seq = coercion_to_casts(fail)
        # The sequence must still be type-correct end to end.
        assert seq[0].source == INT and seq[-1].target == INT

    @given(lambda_c_coercions())
    def test_cast_sequences_are_type_correct_chains(self, generated):
        coercion, source, target = generated
        seq = coercion_to_casts(coercion)
        current = source
        for spec in seq:
            assert types_equal(spec.source, current)
            current = spec.target
        if seq:
            assert types_equal(current, target)

    @given(lambda_c_coercions())
    def test_every_run_time_label_of_the_coercion_survives_translation(self, generated):
        from repro.lambda_c.coercions import labels_of

        coercion, _, _ = generated
        translated_labels = set()
        for spec in coercion_to_casts(coercion):
            translated_labels.add(spec.label)
            translated_labels.add(spec.label.complement())
        for lbl in labels_of(coercion):
            assert lbl in translated_labels or lbl.complement() in translated_labels


class TestTermTranslationAndLemma8:
    def test_apply_cast_sequence_nests_innermost_first(self):
        seq = (CastSpec(INT, P, DYN), CastSpec(DYN, Q, BOOL))
        term = apply_cast_sequence(const_int(1), seq)
        assert term == Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q)

    def test_identity_coercion_disappears(self):
        term = Coerce(const_int(1), Identity(INT))
        assert term_to_lambda_b(term) == const_int(1)

    def test_round_trip_typing(self):
        term = Coerce(Lam("x", INT, Var("x")), FunCoercion(Project(INT, P), Inject(INT)))
        back = term_to_lambda_b(term)
        assert types_equal(type_b(back), type_c(term))

    def test_lemma8_on_a_first_order_round_trip(self):
        term_c = Coerce(const_int(3), Sequence(Inject(INT), Project(INT, P)))
        back_and_forth = term_to_lambda_c(term_to_lambda_b(term_c))
        assert kleene_equivalent(LAMBDA_C, term_c, LAMBDA_C, back_and_forth)

    def test_lemma8_on_a_failing_round_trip(self):
        term_c = Coerce(const_int(3), Sequence(Inject(INT), Project(BOOL, Q)))
        back_and_forth = term_to_lambda_c(term_to_lambda_b(term_c))
        assert kleene_equivalent(LAMBDA_C, term_c, LAMBDA_C, back_and_forth)

    def test_lemma8_on_a_higher_order_coercion(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        coercion = FunCoercion(Project(INT, P), Inject(INT))
        term_c = Coerce(double, coercion)
        back_and_forth = term_to_lambda_c(term_to_lambda_b(term_c))
        assert contextually_equivalent(
            LAMBDA_C, term_c, LAMBDA_C, back_and_forth, GROUND_FUN, depth=2
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_lemma8_behavioural_on_random_coercions_applied_to_values(self, seed):
        """``||M|CB|BC`` is Kleene-equivalent to ``M`` for coerced base values."""
        from repro.gen.coercions_gen import random_coercion
        from repro.gen.terms_gen import TermGenerator

        rng = random.Random(seed)
        coercion, source, target = random_coercion(rng, length=3, depth=2)
        subject = TermGenerator(rng, max_depth=2).term(source)
        subject_c = term_to_lambda_c(subject)
        term_c = Coerce(subject_c, coercion)
        back_and_forth = term_to_lambda_c(term_to_lambda_b(term_c))
        assert types_equal(type_c(back_and_forth), type_c(term_c))
        assert contextually_equivalent(
            LAMBDA_C, term_c, LAMBDA_C, back_and_forth, target, depth=1
        )
