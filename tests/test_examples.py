"""Smoke tests: every shipped example script runs to completion."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name", ["quickstart", "blame_tracking", "coercion_playground", "vm_pipeline"]
)
def test_example_scripts_run(name, capsys):
    module = _load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_space_efficiency_example_runs_scaled_down(capsys, monkeypatch):
    module = _load_example("space_efficiency")
    monkeypatch.setattr(module, "SIZES", (10, 50))
    module.main()
    out = capsys.readouterr().out
    assert "Space profile" in out
    assert "51" in out  # λB pending casts for n = 50


def test_quickstart_reports_agreement(capsys):
    module = _load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "calculi agree     : yes" in out
    assert "NO" not in out


def test_blame_tracking_reports_both_polarities(capsys):
    module = _load_example("blame_tracking")
    module.main()
    out = capsys.readouterr().out
    assert "positive blame" in out
    assert "negative blame" in out
    assert "no fault" in out


def test_example_programs_directory_is_complete():
    programs = {path.name for path in (EXAMPLES_DIR / "programs").glob("*.grad")}
    assert {
        "square.grad", "boundary_blame.grad", "tail_loop.grad",
        # The compile-bound batch-corpus programs (the compile cache's win).
        "stats_pipeline.grad", "vector_mesh.grad", "text_metrics.grad",
    } <= programs


def test_corpus_programs_agree_across_engines_and_images():
    """Every shipped program: VM (-O0/-O2, both mediators) agrees with the
    machine, and a serialized image reproduces the run exactly."""
    from repro.compiler import compile_term, deserialize_image, run_code, serialize_image
    from repro.machine import run_on_machine
    from repro.surface.interp import compile_source

    for path in sorted((EXAMPLES_DIR / "programs").glob("*.grad")):
        term, ty = compile_source(path.read_text())
        oracle = run_on_machine(term, "S")
        for mediator in ("coercion", "threesome"):
            for opt_level in (0, 2):
                code = compile_term(term, mediator=mediator, opt_level=opt_level)
                outcome = run_code(code)
                assert outcome.kind == oracle.kind, (path.name, mediator, opt_level)
                if oracle.is_value:
                    assert outcome.python_value() == oracle.python_value()
                elif oracle.is_blame:
                    assert outcome.label == oracle.label
                reloaded = run_code(deserialize_image(serialize_image(code)).code)
                assert reloaded.kind == outcome.kind
                assert reloaded.stats == outcome.stats
