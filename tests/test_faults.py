"""Tests for deterministic fault injection (:mod:`repro.core.faults`) and
the failure paths it exercises in the compile cache: torn image writes,
zero-length and truncated-header entries, orphaned temp files, and the
shutdown-time :func:`~repro.compiler.cache.sweep_cache`."""

from __future__ import annotations

import pytest

from repro.compiler.cache import (
    cache_lookup,
    cache_path,
    cached_compile,
    sweep_cache,
)
from repro.compiler.serialize import GRADB_MAGIC, source_fingerprint
from repro.core.faults import (
    DEFAULT_FAULT_SEED,
    FAULTS_ENV,
    FaultPlan,
    FaultSpecError,
    current_plan,
    parse_spec,
    reset_plan,
    set_plan,
)
from repro.surface.cast_insertion import elaborate_program
from repro.surface.parser import parse_program

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"


def _elaborate(source: str = SQUARE):
    return elaborate_program(parse_program(source))


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_basic_spec(self):
        spec = "worker_kill:0.1,slow_compile:0.05,torn_write:0.02"
        assert parse_spec(spec) == {
            "worker_kill": (0.1, None),
            "slow_compile": (0.05, None),
            "torn_write": (0.02, None),
        }

    def test_limit_and_whitespace(self):
        assert parse_spec(" worker_kill : 1.0 : 1 , ") == {"worker_kill": (1.0, 1)}

    def test_empty_spec_is_no_sites(self):
        assert parse_spec("") == {}

    @pytest.mark.parametrize("bad", [
        "worker_kill",            # no probability
        "worker_kill:oops",       # non-numeric probability
        "worker_kill:1.5",        # out of [0, 1]
        "worker_kill:0.5:x",      # non-integer limit
        "worker_kill:0.5:-1",     # negative limit
        ":0.5",                   # empty site
        "a:0.5:1:2",              # too many fields
    ])
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)

    def test_spec_round_trips(self):
        plan = FaultPlan.from_spec("worker_kill:0.25,torn_write:1.0:3")
        assert parse_spec(plan.spec()) == plan.sites


class TestFaultPlan:
    def test_draws_are_deterministic_per_seed(self):
        a = FaultPlan.from_spec("worker_kill:0.5", seed=7)
        b = FaultPlan.from_spec("worker_kill:0.5", seed=7)
        draws = [a.fires("worker_kill") for _ in range(50)]
        assert draws == [b.fires("worker_kill") for _ in range(50)]
        assert any(draws) and not all(draws)

    def test_salt_decorrelates_streams(self):
        a = FaultPlan.from_spec("worker_kill:0.5", seed=7, salt="pool")
        b = FaultPlan.from_spec("worker_kill:0.5", seed=7, salt="worker0")
        assert [a.fires("worker_kill") for _ in range(50)] != [
            b.fires("worker_kill") for _ in range(50)
        ]

    def test_probability_extremes(self):
        never = FaultPlan.from_spec("x:0.0")
        always = FaultPlan.from_spec("x:1.0")
        assert not any(never.fires("x") for _ in range(20))
        assert all(always.fires("x") for _ in range(20))

    def test_limit_caps_firings(self):
        plan = FaultPlan.from_spec("x:1.0:2")
        assert [plan.fires("x") for _ in range(5)] == [True, True, False, False, False]
        assert plan.fired["x"] == 2

    def test_unknown_site_never_fires(self):
        plan = FaultPlan.from_spec("x:1.0")
        assert not plan.fires("y")

    def test_delay_only_when_fired(self):
        plan = FaultPlan.from_spec("slow:1.0:1")
        assert plan.delay("slow", duration_s=0.0)
        assert not plan.delay("slow", duration_s=0.0)

    def test_current_plan_reads_environment_lazily(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker_kill:1.0")
        reset_plan()
        plan = current_plan()
        assert plan is not None
        assert plan.sites == {"worker_kill": (1.0, None)}
        assert plan.seed == DEFAULT_FAULT_SEED
        # The read is cached until reset.
        monkeypatch.setenv(FAULTS_ENV, "worker_kill:0.0")
        assert current_plan() is plan
        reset_plan()
        assert current_plan().sites == {"worker_kill": (0.0, None)}

    def test_unset_environment_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        reset_plan()
        assert current_plan() is None


# ---------------------------------------------------------------------------
# Cache corruption: torn writes, truncation, and the shutdown sweep
# ---------------------------------------------------------------------------


class TestCacheCorruption:
    def test_torn_write_is_recovered_on_next_compile(self, tmp_path):
        """A crash mid-write leaves a torn entry; the cache must delete and
        recompile it, never surface it."""
        term, ty = _elaborate()
        set_plan(FaultPlan.from_spec("torn_write:1.0:1"))
        first = cached_compile(term, static_type=ty, cache_dir=tmp_path)
        assert first.status == "miss"  # the returned image is still usable
        data = first.path.read_bytes()
        assert data.startswith(GRADB_MAGIC) and len(data) > 0  # torn, not atomic
        set_plan(None)
        second = cached_compile(term, static_type=ty, cache_dir=tmp_path)
        assert second.status == "recovered"
        assert cached_compile(term, static_type=ty, cache_dir=tmp_path).status == "hit"

    def test_torn_write_is_a_lookup_miss_and_deleted(self, tmp_path):
        term, ty = _elaborate()
        source_hash = source_fingerprint(SQUARE)
        set_plan(FaultPlan.from_spec("torn_write:1.0:1"))
        path = cached_compile(term, source_hash=source_hash, static_type=ty,
                              cache_dir=tmp_path).path
        set_plan(None)
        assert path.exists()
        assert cache_lookup(source_hash, 2, "coercion", tmp_path) is None
        assert not path.exists()

    @pytest.mark.parametrize("junk", [b"", b"GRADB\x00", b"GRADB\x00\x02\x00"])
    def test_zero_length_and_truncated_header_entries(self, tmp_path, junk):
        """Entries shorter than magic + CRC (what a crash between open and
        write leaves) are deleted and treated as misses — never raised."""
        source_hash = source_fingerprint(SQUARE)
        path = cache_path(source_hash, 2, "coercion", tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(junk)
        assert cache_lookup(source_hash, 2, "coercion", tmp_path) is None
        assert not path.exists()

    def test_garbage_entry_is_deleted(self, tmp_path):
        source_hash = source_fingerprint(SQUARE)
        path = cache_path(source_hash, 2, "coercion", tmp_path)
        path.parent.mkdir(parents=True)
        path.write_bytes(GRADB_MAGIC + b"\xff" * 64)
        assert cache_lookup(source_hash, 2, "coercion", tmp_path) is None
        assert not path.exists()

    def test_slow_compile_fault_only_delays(self, tmp_path):
        term, ty = _elaborate()
        set_plan(FaultPlan.from_spec("slow_compile:1.0:1"))
        outcome = cached_compile(term, static_type=ty, cache_dir=tmp_path)
        assert outcome.status == "miss"
        assert current_plan().fired.get("slow_compile") == 1


class TestSweep:
    def test_sweep_removes_corrupt_entries_and_tmp_orphans(self, tmp_path):
        term, ty = _elaborate()
        good = cached_compile(term, static_type=ty, cache_dir=tmp_path)
        other, other_ty = _elaborate("((lambda ([x : int]) x) 42)")
        torn = cached_compile(other, static_type=other_ty, cache_dir=tmp_path,
                              opt_level=0)
        torn.path.write_bytes(torn.path.read_bytes()[:10])
        orphan = tmp_path / "ab" / "deadbeef.gradb.tmp"
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_bytes(b"partial")
        kept, removed = sweep_cache(tmp_path)
        assert (kept, removed) == (1, 2)
        assert good.path.exists()
        assert not torn.path.exists() and not orphan.exists()

    def test_sweep_of_missing_or_clean_cache(self, tmp_path):
        assert sweep_cache(tmp_path / "nonexistent") == (0, 0)
        term, ty = _elaborate()
        cached_compile(term, static_type=ty, cache_dir=tmp_path)
        assert sweep_cache(tmp_path) == (1, 0)
