"""Tests for λS canonical coercions and the composition operator ``#`` (Figure 5)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.errors import CoercionTypeError
from repro.core.labels import label
from repro.core.types import BOOL, DYN, GROUND_FUN, GROUND_PROD, INT, FunType, ProdType
from repro.lambda_s.coercions import (
    ID_DYN,
    FailS,
    FunCo,
    GroundCoercion,
    IdBase,
    IdDyn,
    Injection,
    Intermediate,
    ProdCo,
    Projection,
    SpaceCoercion,
    check_space_coercion,
    coercion_safe_for,
    compose,
    height,
    identity_for,
    is_canonical_identity,
    is_identity,
    is_identity_free,
    lemma13_source_target,
    size,
    space_source,
    space_target,
)
from repro.translate.c_to_s import coercion_to_space
from repro.translate.s_to_c import space_to_coercion

from .strategies import composable_space_coercions, space_coercions

P = label("p")
Q = label("q")

ID_INT = IdBase(INT)
ID_BOOL = IdBase(BOOL)
INT_INJ = Injection(ID_INT, INT)                    # idι ; int!
INT_PROJ = Projection(INT, P, ID_INT)               # int?p ; idι
BOOL_PROJ = Projection(BOOL, Q, ID_BOOL)
FUN_ID = FunCo(ID_DYN, ID_DYN)                      # id? → id?


class TestGrammar:
    def test_class_hierarchy_mirrors_the_grammar(self):
        assert isinstance(ID_INT, GroundCoercion)
        assert isinstance(ID_INT, Intermediate)
        assert isinstance(INT_INJ, Intermediate)
        assert not isinstance(INT_INJ, GroundCoercion)
        assert isinstance(INT_PROJ, SpaceCoercion)
        assert not isinstance(INT_PROJ, Intermediate)
        assert isinstance(FailS(INT, P, BOOL), Intermediate)

    def test_projection_body_must_be_intermediate(self):
        with pytest.raises(CoercionTypeError):
            Projection(INT, P, ID_DYN)

    def test_injection_body_must_be_ground(self):
        with pytest.raises(CoercionTypeError):
            Injection(INT_INJ, INT)

    def test_idbase_requires_a_base_type(self):
        with pytest.raises(CoercionTypeError):
            IdBase(GROUND_FUN)

    def test_fail_requires_distinct_grounds(self):
        with pytest.raises(CoercionTypeError):
            FailS(INT, P, INT)

    def test_fail_equality_ignores_annotations(self):
        assert FailS(INT, P, BOOL, source=INT, target=BOOL) == FailS(INT, P, BOOL)

    def test_identity_freedom(self):
        assert not is_identity_free(ID_DYN)
        assert not is_identity_free(ID_INT)
        assert is_identity_free(INT_INJ)
        assert is_identity_free(INT_PROJ)
        assert is_identity_free(FUN_ID)
        assert is_identity_free(FailS(INT, P, BOOL))

    def test_is_identity(self):
        assert is_identity(ID_DYN) and is_identity(ID_INT)
        assert not is_identity(FUN_ID)

    def test_canonical_identity_recognition(self):
        assert is_canonical_identity(identity_for(FunType(INT, FunType(DYN, BOOL))))
        assert not is_canonical_identity(INT_INJ)


class TestIdentityFor:
    def test_identity_for_base_and_dyn(self):
        assert identity_for(INT) == ID_INT
        assert identity_for(DYN) == ID_DYN

    def test_identity_for_ground_function_is_ground(self):
        ground_id = identity_for(GROUND_FUN)
        assert isinstance(ground_id, GroundCoercion)
        assert ground_id == FUN_ID

    def test_identity_for_products(self):
        assert identity_for(GROUND_PROD) == ProdCo(ID_DYN, ID_DYN)

    def test_identity_for_typing(self):
        ty = FunType(INT, ProdType(BOOL, DYN))
        assert space_source(identity_for(ty)) == ty
        assert space_target(identity_for(ty)) == ty


class TestTyping:
    def test_sources_and_targets(self):
        assert space_source(INT_INJ) == INT and space_target(INT_INJ) == DYN
        assert space_source(INT_PROJ) == DYN and space_target(INT_PROJ) == INT
        assert space_source(ID_DYN) == DYN
        assert space_source(FUN_ID) == GROUND_FUN

    def test_check_space_coercion(self):
        assert check_space_coercion(INT_INJ, INT) == DYN
        assert check_space_coercion(INT_PROJ, DYN) == INT
        with pytest.raises(CoercionTypeError):
            check_space_coercion(INT_INJ, BOOL)
        with pytest.raises(CoercionTypeError):
            check_space_coercion(INT_PROJ, INT)

    @given(space_coercions())
    def test_generated_canonical_coercions_type_check(self, generated):
        coercion, source, target = generated
        result = check_space_coercion(coercion, source)
        from repro.core.types import types_equal

        assert types_equal(result, target)

    @given(space_coercions())
    def test_lemma13_source_and_target(self, generated):
        coercion, _, _ = generated
        from repro.lambda_s.coercions import subcoercions

        for sub in subcoercions(coercion):
            assert lemma13_source_target(sub)


class TestCompositionEquations:
    """Each defining equation of ``#`` from Figure 5."""

    def test_idi_compose_idi(self):
        assert compose(ID_INT, ID_INT) == ID_INT

    def test_function_composition_swaps_domains(self):
        # (s → t) # (s' → t') = (s' # s) → (t # t'):
        # here both round trips cancel, leaving the identity function coercion.
        s = FunCo(INT_PROJ, INT_INJ)       # int→int ⇒ ?→?  (dom ?⇒int, cod int⇒?)
        t = FunCo(INT_INJ, INT_PROJ)       # ?→? ⇒ int→int
        composed = compose(s, t)
        assert composed == FunCo(ID_INT, ID_INT)
        # And composing the other way round gives the identity at ?→?.
        assert compose(t, s) == FunCo(compose(INT_PROJ, INT_INJ), compose(INT_PROJ, INT_INJ))

    def test_product_composition_is_componentwise(self):
        s = ProdCo(INT_INJ, ID_INT)
        t = ProdCo(INT_PROJ, ID_INT)
        assert compose(s, t) == ProdCo(compose(INT_INJ, INT_PROJ), ID_INT)

    def test_id_dyn_is_a_left_unit(self):
        assert compose(ID_DYN, INT_PROJ) == INT_PROJ
        assert compose(ID_DYN, ID_DYN) == ID_DYN

    def test_id_dyn_is_a_right_unit_for_injections(self):
        assert compose(INT_INJ, ID_DYN) == INT_INJ

    def test_projection_prefix_floats_out(self):
        assert compose(INT_PROJ, INT_INJ) == Projection(INT, P, compose(ID_INT, INT_INJ))

    def test_injection_suffix_floats_out(self):
        assert compose(ID_INT, INT_INJ) == Injection(compose(ID_INT, ID_INT), INT)

    def test_matching_injection_projection_cancel(self):
        assert compose(INT_INJ, INT_PROJ) == ID_INT

    def test_mismatched_injection_projection_fail(self):
        result = compose(INT_INJ, BOOL_PROJ)
        assert result == FailS(INT, Q, BOOL)

    def test_fail_absorbs_on_the_left(self):
        fail = FailS(INT, P, BOOL)
        assert compose(fail, ID_BOOL) == fail
        assert compose(fail, Injection(ID_BOOL, BOOL)) == fail

    def test_fail_absorbs_on_the_right(self):
        fail = FailS(BOOL, P, INT)
        assert compose(ID_BOOL, fail) == fail

    def test_ill_typed_composition_raises(self):
        with pytest.raises(CoercionTypeError):
            compose(ID_INT, ID_BOOL)
        with pytest.raises(CoercionTypeError):
            compose(ID_INT, ID_DYN)

    def test_higher_order_round_trip_composes_to_identity(self):
        # (id_G ; G!) # (G?p ; id_G)  =  id_G   for G = ?→?
        inj = Injection(FUN_ID, GROUND_FUN)
        proj = Projection(GROUND_FUN, P, FUN_ID)
        assert compose(inj, proj) == FUN_ID

    def test_fail_detected_deep_inside_composition(self):
        # int! then bool?q deep under a projection prefix.
        s = Projection(INT, P, Injection(ID_INT, INT))     # int?p ; idι ; int!
        t = Projection(BOOL, Q, ID_BOOL)                   # bool?q ; idι
        assert compose(s, t) == Projection(INT, P, FailS(INT, Q, BOOL))


class TestCompositionProperties:
    @given(composable_space_coercions())
    def test_composition_stays_canonical_and_well_typed(self, generated):
        s, t, source, _, target = generated
        composed = compose(s, t)
        assert isinstance(composed, SpaceCoercion)
        result = check_space_coercion(composed, source)
        from repro.core.types import UnknownType, types_equal

        assert isinstance(result, UnknownType) or types_equal(result, target)

    @given(composable_space_coercions())
    def test_height_preservation_proposition_14(self, generated):
        s, t, *_ = generated
        assert height(compose(s, t)) <= max(height(s), height(t))

    @given(space_coercions())
    def test_size_is_bounded_by_height(self, generated):
        """A canonical coercion of bounded height has bounded size (Section 4)."""
        coercion, _, _ = generated
        assert size(coercion) <= 6 * (2 ** height(coercion))

    @given(composable_space_coercions())
    def test_composition_agrees_with_normalisation_of_the_sequence(self, generated):
        """s # t is the canonical form of the λC composition (s ; t)."""
        from repro.lambda_c.coercions import Sequence

        s, t, *_ = generated
        sequential = Sequence(space_to_coercion(s), space_to_coercion(t))
        assert coercion_to_space(sequential) == compose(s, t)

    @given(composable_space_coercions())
    def test_composition_with_identity_is_neutral(self, generated):
        s, _, source, middle, _ = generated
        assert compose(identity_for(source), s) == s
        assert compose(s, identity_for(middle)) == s


class TestSafetyAndMetrics:
    def test_projection_and_fail_mention_their_labels(self):
        assert not coercion_safe_for(INT_PROJ, P)
        assert coercion_safe_for(INT_PROJ, Q)
        assert not coercion_safe_for(FailS(INT, P, BOOL), P)

    def test_height_of_primitives(self):
        assert height(ID_DYN) == 1
        assert height(ID_INT) == 1
        assert height(INT_INJ) == 1
        assert height(INT_PROJ) == 1
        assert height(FUN_ID) == 2

    def test_size_counts_constructors(self):
        assert size(INT_PROJ) == 2
        assert size(Injection(FUN_ID, GROUND_FUN)) == 4

    def test_pretty_printing(self):
        assert "int!" in str(INT_INJ)
        assert "?p" in str(INT_PROJ)
        assert "id?" == str(ID_DYN)
        assert "->" in str(FUN_ID)
