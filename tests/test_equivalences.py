"""Tests for the coercion equivalences of Lemma 7 / Lemma 19 (Section 5.1).

The paper proves these contextual equivalences in λC by translating both
sides to λS and appealing to full abstraction.  We check them the same way —
the λS normal forms coincide syntactically — and additionally check them
behaviourally with probing contexts.
"""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import label
from repro.core.terms import Coerce, Lam, Op, Var, const_int
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType
from repro.lambda_c.coercions import (
    FunCoercion,
    Identity,
    Inject,
    Project,
    Sequence,
    coercion_source,
    coercion_target,
)
from repro.properties.calculi import LAMBDA_C
from repro.properties.equivalence import contextually_equivalent, kleene_equivalent
from repro.translate.c_to_s import coercion_to_space

from .strategies import lambda_c_coercions

P = label("p")
Q = label("q")


def _canonical(coercion):
    return coercion_to_space(coercion)


class TestLemma19Syntactic:
    """Each clause, checked on the λS normal forms (the paper's own proof route)."""

    @given(lambda_c_coercions())
    def test_clause_3_identity_units(self, generated):
        c, source, target = generated
        assert _canonical(Sequence(c, Identity(target))) == _canonical(c)
        assert _canonical(Sequence(Identity(source), c)) == _canonical(c)

    @given(lambda_c_coercions(length=2), lambda_c_coercions(length=2))
    def test_clause_4_function_compositions_merge(self, left, right):
        c, c_src, c_tgt = left
        d, d_src, d_tgt = right
        lhs = Sequence(FunCoercion(c, d), FunCoercion(Identity(c_src), Identity(d_tgt)))
        rhs = FunCoercion(Sequence(Identity(c_src), c), Sequence(d, Identity(d_tgt)))
        assert _canonical(lhs) == _canonical(rhs)

    @given(lambda_c_coercions(length=2), lambda_c_coercions(length=2))
    def test_clause_5_factor_through_domain(self, left, right):
        c, c_src, c_tgt = left
        d, d_src, d_tgt = right
        # c → d  ≃  (c → id) ; (id → d)
        fun = FunCoercion(c, d)
        factored = Sequence(FunCoercion(c, Identity(d_src)), FunCoercion(Identity(c_src), d))
        assert _canonical(fun) == _canonical(factored)

    @given(lambda_c_coercions(length=2), lambda_c_coercions(length=2))
    def test_clause_6_factor_through_codomain(self, left, right):
        c, c_src, c_tgt = left
        d, d_src, d_tgt = right
        # c → d  ≃  (id → d) ; (c → id)
        fun = FunCoercion(c, d)
        factored = Sequence(FunCoercion(Identity(c_tgt), d), FunCoercion(c, Identity(d_tgt)))
        assert _canonical(fun) == _canonical(factored)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_composition_is_associative_up_to_normal_form(self, seed):
        """The associativity headache of Herman et al., dissolved by canonical forms."""
        from repro.gen.coercions_gen import random_coercion

        rng = random.Random(seed)
        c1, a, b = random_coercion(rng, length=2)
        c2, _, c_mid = random_coercion(rng, length=2, start=b)
        c3, _, _ = random_coercion(rng, length=2, start=c_mid)
        left = Sequence(Sequence(c1, c2), c3)
        right = Sequence(c1, Sequence(c2, c3))
        assert _canonical(left) == _canonical(right)


class TestLemma7Behavioural:
    """Clauses 1 and 2 of Lemma 7, checked by running both sides."""

    def test_identity_application_is_equivalent_to_nothing(self):
        term = const_int(3)
        assert kleene_equivalent(
            LAMBDA_C, Coerce(term, Identity(INT)), LAMBDA_C, term
        )

    def test_composition_application_splits(self):
        c = Inject(INT)
        d = Project(INT, P)
        lhs = Coerce(const_int(3), Sequence(c, d))
        rhs = Coerce(Coerce(const_int(3), c), d)
        assert kleene_equivalent(LAMBDA_C, lhs, LAMBDA_C, rhs)

    def test_composition_application_splits_when_failing(self):
        c = Inject(INT)
        d = Project(BOOL, Q)
        lhs = Coerce(const_int(3), Sequence(c, d))
        rhs = Coerce(Coerce(const_int(3), c), d)
        assert kleene_equivalent(LAMBDA_C, lhs, LAMBDA_C, rhs)

    def test_function_factoring_behaves_identically(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        c, d = Project(INT, P), Inject(INT)
        fun = Coerce(double, FunCoercion(c, d))
        factored = Coerce(
            double,
            Sequence(FunCoercion(c, Identity(INT)), FunCoercion(Identity(DYN), d)),
        )
        assert contextually_equivalent(LAMBDA_C, fun, LAMBDA_C, factored, GROUND_FUN, depth=2)

    @given(st.integers(min_value=0, max_value=2**31))
    def test_lemma7_clause2_on_random_coercions_and_subjects(self, seed):
        from repro.gen.coercions_gen import random_coercion
        from repro.gen.terms_gen import TermGenerator

        rng = random.Random(seed)
        c, a, b = random_coercion(rng, length=2, depth=2)
        d, _, target = random_coercion(rng, length=2, depth=2, start=b)
        subject = TermGenerator(rng, max_depth=2).term(a)
        from repro.translate.b_to_c import term_to_lambda_c

        subject_c = term_to_lambda_c(subject)
        lhs = Coerce(subject_c, Sequence(c, d))
        rhs = Coerce(Coerce(subject_c, c), d)
        assert kleene_equivalent(LAMBDA_C, lhs, LAMBDA_C, rhs)
