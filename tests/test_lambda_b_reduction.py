"""Tests for λB reduction (Figure 1): each rule, values, blame, and Lemma 2."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given

from repro.core.errors import StuckError
from repro.core.labels import BULLET, label
from repro.core.terms import (
    App,
    Blame,
    Cast,
    Const,
    Fix,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Var,
    const_bool,
    const_int,
)
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType, ProdType, all_types, compatible, ground_of, is_ground
from repro.lambda_b.embed import embed
from repro.lambda_b.reduction import Outcome, blame_in_evaluation_position, run, step, trace
from repro.lambda_b.syntax import is_value
from repro.lambda_b.typecheck import type_of

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")
I2I = FunType(INT, INT)


class TestValues:
    def test_constants_and_lambdas_are_values(self):
        assert is_value(const_int(1))
        assert is_value(Lam("x", INT, Var("x")))

    def test_pairs_of_values_are_values(self):
        assert is_value(Pair(const_int(1), const_bool(True)))
        assert not is_value(Pair(Op("+", (const_int(1), const_int(1))), const_int(2)))

    def test_function_cast_of_value_is_a_value(self):
        proxy = Cast(Lam("x", INT, Var("x")), I2I, FunType(DYN, DYN), P)
        assert is_value(proxy)

    def test_product_cast_of_value_is_a_value(self):
        proxy = Cast(Pair(const_int(1), const_int(2)), ProdType(INT, INT), ProdType(DYN, DYN), P)
        assert is_value(proxy)

    def test_injection_of_value_is_a_value(self):
        assert is_value(Cast(const_int(1), INT, DYN, P))
        assert is_value(Cast(Lam("x", DYN, Var("x")), GROUND_FUN, DYN, P))

    def test_base_cast_is_not_a_value(self):
        assert not is_value(Cast(const_int(1), INT, INT, P))

    def test_projection_is_not_a_value(self):
        injected = Cast(const_int(1), INT, DYN, P)
        assert not is_value(Cast(injected, DYN, INT, Q))

    def test_blame_is_not_a_value(self):
        assert not is_value(Blame(P))


class TestCastRules:
    def test_identity_base_cast(self):
        assert step(Cast(const_int(1), INT, INT, P)) == const_int(1)

    def test_identity_dyn_cast(self):
        injected = Cast(const_int(1), INT, DYN, P)
        assert step(Cast(injected, DYN, DYN, Q)) == injected

    def test_function_cast_applied(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        proxy = Cast(double, I2I, FunType(DYN, DYN), P)
        applied = App(proxy, Cast(const_int(3), INT, DYN, Q))
        stepped = step(applied)
        # (V : int→int ⇒p ?→?) W  →  (V (W : ? ⇒p̄ int)) : int ⇒p ?
        assert stepped == Cast(
            App(double, Cast(Cast(const_int(3), INT, DYN, Q), DYN, INT, P.complement())),
            INT,
            DYN,
            P,
        )

    def test_injection_factoring(self):
        fun = Lam("x", INT, Var("x"))
        cast = Cast(fun, I2I, DYN, P)
        stepped = step(cast)
        assert stepped == Cast(Cast(fun, I2I, GROUND_FUN, P), GROUND_FUN, DYN, P)

    def test_projection_factoring(self):
        injected = Cast(Cast(Lam("x", DYN, Var("x")), GROUND_FUN, DYN, P), DYN, I2I, Q)
        stepped = step(injected)
        assert stepped == Cast(
            Cast(Cast(Lam("x", DYN, Var("x")), GROUND_FUN, DYN, P), DYN, GROUND_FUN, Q),
            GROUND_FUN,
            I2I,
            Q,
        )

    def test_collapse_matching_ground_types(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q)
        assert step(term) == const_int(1)

    def test_mismatched_ground_types_blame_the_outer_label(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q)
        assert step(term) == Blame(Q)

    def test_product_cast_pushes_through_fst(self):
        pair_proxy = Cast(Pair(const_int(1), const_int(2)), ProdType(INT, INT), ProdType(DYN, INT), P)
        assert step(Fst(pair_proxy)) == Cast(Fst(Pair(const_int(1), const_int(2))), INT, DYN, P)

    def test_product_cast_pushes_through_snd(self):
        pair_proxy = Cast(Pair(const_int(1), const_int(2)), ProdType(INT, INT), ProdType(INT, DYN), P)
        assert step(Snd(pair_proxy)) == Cast(Snd(Pair(const_int(1), const_int(2))), INT, DYN, P)


class TestStandardRules:
    def test_beta(self):
        term = App(Lam("x", INT, Op("+", (Var("x"), const_int(1)))), const_int(2))
        assert step(term) == Op("+", (const_int(2), const_int(1)))

    def test_operator_application(self):
        assert step(Op("+", (const_int(2), const_int(3)))) == const_int(5)

    def test_if_true_false(self):
        assert step(If(const_bool(True), const_int(1), const_int(2))) == const_int(1)
        assert step(If(const_bool(False), const_int(1), const_int(2))) == const_int(2)

    def test_let(self):
        assert step(Let("x", const_int(1), Var("x"))) == const_int(1)

    def test_pair_projections(self):
        pair = Pair(const_int(1), const_int(2))
        assert step(Fst(pair)) == const_int(1)
        assert step(Snd(pair)) == const_int(2)

    def test_fix_unrolls(self):
        fun_type = I2I
        functional = Lam("f", fun_type, Lam("x", INT, Var("x")))
        stepped = step(Fix(functional, fun_type))
        assert isinstance(stepped, App)
        assert stepped.fun == functional

    def test_left_to_right_evaluation_order(self):
        term = Op("+", (Op("+", (const_int(1), const_int(1))), Op("+", (const_int(2), const_int(2)))))
        stepped = step(term)
        assert stepped == Op("+", (const_int(2), Op("+", (const_int(2), const_int(2)))))

    def test_values_do_not_step(self):
        assert step(const_int(1)) is None
        assert step(Lam("x", INT, Var("x"))) is None
        assert step(Blame(P)) is None

    def test_stuck_term_raises(self):
        with pytest.raises(StuckError):
            step(App(const_int(1), const_int(2)))


class TestBlamePropagation:
    def test_blame_in_evaluation_position_is_found(self):
        term = Op("+", (Blame(P), const_int(1)))
        assert blame_in_evaluation_position(term) == P

    def test_blame_not_in_evaluation_position(self):
        term = Op("+", (Op("+", (const_int(1), const_int(1))), Blame(P)))
        assert blame_in_evaluation_position(term) is None

    def test_blame_collapses_the_whole_context_in_one_step(self):
        term = Op("+", (App(Lam("x", INT, Var("x")), Blame(P)), const_int(1)))
        assert step(term) == Blame(P)

    def test_blame_under_a_lambda_does_not_propagate(self):
        term = Lam("x", INT, Blame(P))
        assert step(term) is None

    def test_blame_in_cast_position(self):
        term = Cast(Blame(P), INT, DYN, Q)
        assert step(term) == Blame(P)


class TestFailureLemma:
    def test_lemma2_exhaustive_on_small_types(self):
        """Lemma 2: V : A ⇒ G ⇒ ? ⇒p3 H ⇒ B  reduces to blame p3 when G ≠ H."""
        grounds = [INT, BOOL, GROUND_FUN]
        small = [t for t in all_types(2) if not t == DYN]
        p1, p2, p3, p4 = label("p1"), label("p2"), label("p3"), label("p4")
        checked = 0
        for a in small:
            g = ground_of(a)
            for h in grounds:
                if g == h:
                    continue
                for b in small:
                    if not compatible(h, b):
                        continue
                    value = _canonical_value(a)
                    term = Cast(
                        Cast(Cast(Cast(value, a, g, p1), g, DYN, p2), DYN, h, p3), h, b, p4
                    )
                    outcome = run(term, 100)
                    assert outcome.is_blame and outcome.label == p3, (a, g, h, b, outcome)
                    checked += 1
        assert checked > 20


def _canonical_value(ty):
    """A closed value of the given type, for the failure-lemma sweep."""
    if ty == INT:
        return const_int(0)
    if ty == BOOL:
        return const_bool(True)
    if isinstance(ty, FunType):
        return Lam("x", ty.dom, _dummy_of(ty.cod))
    if isinstance(ty, ProdType):
        return Pair(_canonical_value(ty.left), _canonical_value(ty.right))
    if ty == DYN:
        return Cast(const_int(0), INT, DYN, BULLET)
    raise AssertionError(ty)


def _dummy_of(ty):
    if isinstance(ty, (FunType, ProdType)) or ty == DYN:
        return _canonical_value(ty)
    return _canonical_value(ty)


class TestRunAndTrace:
    def test_run_to_value(self):
        outcome = run(Op("*", (const_int(6), const_int(7))))
        assert outcome.is_value and outcome.term == const_int(42)

    def test_run_to_blame(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q)
        outcome = run(term)
        assert outcome.is_blame and outcome.label == Q

    def test_run_timeout_on_divergence(self):
        omega_fun = Lam("f", I2I, Lam("x", INT, App(Var("f"), Var("x"))))
        diverging = App(Fix(omega_fun, I2I), const_int(0))
        outcome = run(diverging, fuel=200)
        assert outcome.is_timeout

    def test_trace_starts_with_the_term_and_ends_with_the_result(self):
        term = Op("+", (const_int(1), const_int(1)))
        steps = list(trace(term))
        assert steps[0] == term
        assert steps[-1] == const_int(2)

    def test_outcome_str(self):
        assert "value" in str(run(const_int(1)))
        assert "blame" in str(run(Blame(P)))

    @given(lambda_b_programs())
    def test_every_generated_program_terminates_cleanly(self, program):
        term, ty = program
        outcome = run(term, fuel=20_000)
        assert outcome.is_value or outcome.is_blame
        if outcome.is_value:
            assert is_value(outcome.term)
            # Preservation at the end of the run.
            from repro.core.types import types_equal, UnknownType

            final = type_of(outcome.term)
            assert isinstance(final, UnknownType) or types_equal(final, ty)


class TestEmbedding:
    def test_embedded_constant(self):
        term = embed(const_int(5))
        assert type_of(term) == DYN
        outcome = run(term)
        assert outcome.is_value

    def test_embedded_application(self):
        program = App(Lam("x", DYN, Op("+", (Var("x"), const_int(1)))), const_int(41))
        term = embed(program)
        assert type_of(term) == DYN
        outcome = run(term)
        assert outcome.is_value
        from repro.core.terms import erase

        assert erase(outcome.term) == const_int(42)

    def test_embedded_dynamic_type_error_blames(self):
        # (1 2) — applying a number — must blame some label, not get stuck.
        program = App(const_int(1), const_int(2))
        outcome = run(embed(program))
        assert outcome.is_blame

    def test_embedded_if_and_pair(self):
        program = If(const_bool(True), Fst(Pair(const_int(1), const_int(2))), const_int(9))
        outcome = run(embed(program))
        assert outcome.is_value

    def test_embedding_rejects_casts(self):
        from repro.core.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            embed(Cast(const_int(1), INT, DYN, P))

    def test_embedded_terms_are_well_typed(self):
        program = Let("f", Lam("x", DYN, Var("x")), App(Var("f"), const_bool(True)))
        assert type_of(embed(program)) == DYN
