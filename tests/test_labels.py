"""Tests for blame labels and their involutive complement."""

from __future__ import annotations

from hypothesis import given

from repro.core.labels import BULLET, Label, LabelSupply, complement, label

from .strategies import labels


class TestComplement:
    def test_complement_flips_polarity(self):
        p = label("p")
        assert p.positive
        assert not p.complement().positive

    @given(labels)
    def test_complement_is_involutive(self, p):
        assert p.complement().complement() == p

    @given(labels)
    def test_complement_never_equals_the_label(self, p):
        assert p.complement() != p

    @given(labels)
    def test_complement_preserves_the_name(self, p):
        assert p.complement().same_base(p)

    def test_free_function_complement(self):
        assert complement(label("p")) == label("p").complement()

    def test_base_returns_positive_version(self):
        negative = label("p").complement()
        assert negative.base() == label("p")
        assert label("p").base() == label("p")


class TestPresentation:
    def test_positive_label_renders_as_name(self):
        assert str(label("boundary")) == "boundary"

    def test_negative_label_renders_with_tilde(self):
        assert str(label("boundary").complement()) == "~boundary"

    def test_labels_are_hashable_and_ordered(self):
        pool = {label("a"), label("b"), label("a").complement()}
        assert len(pool) == 3
        assert sorted(pool)

    def test_bullet_label_exists(self):
        assert BULLET.name == "•"
        assert BULLET.positive


class TestLabelSupply:
    def test_fresh_labels_are_distinct(self):
        supply = LabelSupply()
        drawn = [supply.fresh() for _ in range(10)]
        assert len(set(drawn)) == 10

    def test_fresh_labels_embed_the_hint(self):
        supply = LabelSupply(prefix="loc")
        fresh = supply.fresh("app")
        assert fresh.name.startswith("loc")
        assert "app" in fresh.name

    def test_fresh_many(self):
        supply = LabelSupply()
        drawn = list(supply.fresh_many(5))
        assert len(drawn) == 5
        assert len(set(drawn)) == 5

    def test_separate_supplies_are_independent(self):
        first = LabelSupply(prefix="a")
        second = LabelSupply(prefix="b")
        assert first.fresh() != second.fresh()
