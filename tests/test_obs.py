"""Tests for the observability layer: tracing, metrics, timelines, blame trails.

The load-bearing property is **non-perturbation**: a traced run's outcome —
value, blame label, step count, and the full space-stats snapshot — must be
bit-identical to the untraced run, for every engine (CEK machine, stack VM,
register VM), both mediator backends, and every optimizer level.  The
tracer only reads; the hypothesis property at the bottom pins that down
over generated programs.

The rest covers the schema (every event kind round-trips through its dict
form), the sinks, the metrics registry, the space-timeline compression
envelope, and blame-provenance trails.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.gen.programs import (
    even_odd_boundary,
    even_odd_expected,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.machine import run_on_machine
from repro.obs import (
    EVENT_KINDS,
    EVENT_TYPES,
    ChromeTraceSink,
    JsonLinesSink,
    ListSink,
    MetricsRegistry,
    RingBufferSink,
    SpaceTimeline,
    TeeSink,
    blame_trail,
    current_tracer,
    event_from_dict,
    format_trail,
    mediator_labels,
    record_run,
    tracing,
)
from repro.obs.events import (
    Apply,
    BlameEvent,
    Collapse,
    Install,
    MediatorDef,
    Merge,
    RunEnd,
    RunStart,
)
from repro.surface.interp import run_term

from .strategies import lambda_b_programs

# ---------------------------------------------------------------------------
# Event schema
# ---------------------------------------------------------------------------

#: One representative instance per event kind (every field exercised).
SAMPLE_EVENTS = [
    RunStart("rvm", "S", "coercion", "prog.grad"),
    RunStart("machine", "B", "coercion"),
    MediatorDef(3, "(int? ; id[int])", 2, ("boundary", "q")),
    Install(17, 3, 1, 2),
    Merge(21, 3, 4, 5, 1, 3),
    Collapse(40, 5, 0, 0),
    Apply(40, 5),
    BlameEvent(41, "boundary", 5),
    BlameEvent(41, "~q"),
    RunEnd("blame", 41, {"steps": 41, "max_pending_mediators": 1}),
]


class TestEventSchema:
    def test_every_kind_has_a_sample(self):
        assert {type(e).kind for e in SAMPLE_EVENTS} == set(EVENT_KINDS)
        assert set(EVENT_TYPES) == set(EVENT_KINDS)

    @pytest.mark.parametrize("event", SAMPLE_EVENTS,
                             ids=lambda e: type(e).__name__)
    def test_round_trip(self, event):
        d = event.to_dict()
        assert d["ev"] == type(event).kind
        json.loads(json.dumps(d))  # JSON-ready
        assert event_from_dict(d) == event

    def test_round_trip_survives_json(self):
        for event in SAMPLE_EVENTS:
            wire = json.loads(json.dumps(event.to_dict()))
            rebuilt = event_from_dict(wire)
            assert rebuilt.to_dict() == event.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            event_from_dict({"ev": "nonsense"})

    def test_mediator_labels_walks_structures(self):
        from repro.core.labels import Label
        from repro.core.types import DYN, INT
        from repro.machine.policy import CastMediator

        m = CastMediator(INT, DYN, Label("boundary"))
        assert mediator_labels(m) == ("boundary",)
        assert mediator_labels((m, m)) == ("boundary",)  # deduped
        assert mediator_labels(42) == ()


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TestSinks:
    def test_ring_buffer_evicts_oldest(self):
        sink = RingBufferSink(capacity=3)
        for step in range(5):
            sink.emit(Apply(step, 0).to_dict())
        assert [e["step"] for e in sink.events] == [2, 3, 4]

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(path)
        for event in SAMPLE_EVENTS:
            sink.emit(event.to_dict())
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == len(SAMPLE_EVENTS) == sink.count
        rebuilt = [event_from_dict(json.loads(line)) for line in lines]
        assert rebuilt == SAMPLE_EVENTS

    def test_chrome_sink_emits_counter_track(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        for event in SAMPLE_EVENTS:
            sink.emit(event.to_dict())
        sink.close()
        entries = json.loads(path.read_text())
        counters = [e for e in entries if e["ph"] == "C"]
        assert counters and all(e["name"] == "pending mediators" for e in counters)
        assert {"mediators", "size"} <= set(counters[0]["args"])
        assert any(e["name"].startswith("blame") for e in entries)

    def test_tee_fans_out(self):
        left, right = ListSink(), ListSink()
        tee = TeeSink([left, right])
        tee.emit(Apply(1, 0).to_dict())
        tee.close()
        assert left.events == right.events == [Apply(1, 0).to_dict()]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counters_gauges(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.counter("a").inc(4)
        m.gauge("g").high(7)
        m.gauge("g").high(3)  # not a new high
        snap = m.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"g": 7}

    def test_histogram_buckets_fixed(self):
        m = MetricsRegistry()
        h = m.histogram("h", boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):  # one per bucket incl. overflow
            h.observe(value)
        d = m.snapshot()["histograms"]["h"]
        assert d["boundaries"] == [1.0, 2.0]
        assert d["counts"] == [1, 1, 1]
        assert d["count"] == 3 and d["min"] == 0.5 and d["max"] == 99.0

    def test_phase_timer_accumulates(self):
        m = MetricsRegistry()
        for _ in range(3):
            with m.timer("parse"):
                pass
        snap = m.snapshot()["phases"]["parse"]
        assert snap["count"] == 3 and snap["total_s"] >= 0.0

    def test_record_run_folds_stats(self):
        m = MetricsRegistry()
        record_run(m, "value", {"steps": 10, "max_pending_mediators": 2,
                                "merges": 4}, "rvm")
        record_run(m, "blame", {"steps": 5, "max_pending_mediators": 7}, "rvm")
        snap = m.snapshot()
        assert snap["counters"]["run.count"] == 2
        assert snap["counters"]["run.outcome.value"] == 1
        assert snap["counters"]["run.outcome.blame"] == 1
        assert snap["counters"]["run.steps"] == 15
        assert snap["gauges"]["run.max_pending_mediators"] == 7
        record_run(None, "value", {}, "vm")  # None is the off switch

    def test_pipeline_phases_recorded(self):
        from repro.surface.interp import run_source

        m = MetricsRegistry()
        result = run_source("(+ 1 2)", engine="rvm", metrics=m)
        assert result.is_value and result.value == 3
        phases = m.snapshot()["phases"]
        assert {"parse", "elaborate", "lower", "optimize", "regalloc",
                "run"} <= set(phases)

    def test_cache_counters(self, tmp_path):
        from repro.surface.interp import run_source

        m = MetricsRegistry()
        run_source("(+ 1 2)", engine="vm", cache=True, cache_dir=str(tmp_path),
                   metrics=m)
        run_source("(+ 1 2)", engine="vm", cache=True, cache_dir=str(tmp_path),
                   metrics=m)
        counters = m.snapshot()["counters"]
        assert counters["cache.miss"] == 1 and counters["cache.hit"] == 1


# ---------------------------------------------------------------------------
# Timeline
# ---------------------------------------------------------------------------


class TestTimeline:
    def test_samples_space_events_only(self):
        timeline = SpaceTimeline()
        timeline.emit(Install(1, 0, 1, 2).to_dict())
        timeline.emit(Apply(2, 0).to_dict())  # not a space event
        timeline.emit(Merge(3, 0, 1, 2, 1, 3).to_dict())
        timeline.emit(Collapse(4, 2, 0, 0).to_dict())
        series = timeline.series()
        assert series["steps"] == [1, 3, 4]
        assert series["pending_mediators"] == [1, 1, 0]
        assert series["max_pending_mediators"] == 1
        assert series["max_pending_size"] == 3
        assert not series["downsampled"]

    def test_compression_preserves_envelope(self):
        timeline = SpaceTimeline(max_points=16)
        peak_step = 500
        for step in range(1200):
            pending = 40 if step == peak_step else (step % 7)
            timeline.emit(Install(step, 0, pending, pending).to_dict())
        series = timeline.series()
        assert series["downsampled"]
        assert series["points"] <= 2 * 16 + 1
        assert series["max_pending_mediators"] == 40  # the spike survives
        assert peak_step in series["steps"]

    def test_tees_to_inner(self):
        inner = ListSink()
        timeline = SpaceTimeline(inner=inner)
        timeline.emit(Apply(1, 0).to_dict())
        timeline.emit(Install(2, 0, 1, 1).to_dict())
        timeline.close()
        assert len(inner.events) == 2  # everything forwarded, space or not

    def test_machine_timeline_matches_paper_shape(self):
        n = 40
        shapes = {}
        for calculus in ("B", "C", "S"):
            timeline = SpaceTimeline()
            with tracing(timeline):
                outcome = run_on_machine(even_odd_boundary(n), calculus)
            assert outcome.is_value
            series = timeline.series()
            assert (series["max_pending_mediators"]
                    == outcome.stats["max_pending_mediators"])
            shapes[calculus] = series["max_pending_mediators"]
        assert shapes["S"] <= 4          # bounded
        assert shapes["B"] >= n          # linear
        assert shapes["C"] >= n


# ---------------------------------------------------------------------------
# Blame trails
# ---------------------------------------------------------------------------


class TestBlameTrail:
    def test_no_blame_no_trail(self):
        sink = ListSink()
        with tracing(sink):
            run_on_machine(even_odd_boundary(4), "S")
        assert blame_trail(sink.events) is None

    @pytest.mark.parametrize("engine", ["machine", "vm", "rvm"])
    def test_trail_identifies_failing_mediator(self, engine):
        sink = ListSink()
        with tracing(sink):
            result = run_term(untyped_library_bad_result(), engine=engine)
        assert result.is_blame
        trail = blame_trail(sink.events)
        assert trail is not None
        assert trail["label"] == str(result.blame_label)
        assert trail["mediator"] is not None
        assert "boundary" in trail["labels"]
        text = format_trail(trail)
        assert text.startswith("blame boundary at step ")
        assert "failing mediator:" in text

    def test_trail_reconstructs_composition_chain(self):
        sink = ListSink()
        with tracing(sink):
            result = run_term(untyped_library_bad_result(), engine="rvm",
                              opt_level=2)
        assert result.is_blame
        trail = blame_trail(sink.events)
        # On the compiled engines the failing mediator is itself a
        # composition — the trail carries at least that one merge.
        assert trail["trail"], trail
        entry = trail["trail"][0]
        assert entry["result"] == trail["mediator"]
        assert entry["new"] is not None and entry["prev"] is not None

    def test_unknown_references_degrade_to_ids(self):
        # A ring buffer evicted the definitions: refs print as #<id>.
        events = [
            Merge(3, 7, 8, 9, 1, 2).to_dict(),
            BlameEvent(4, "p", 9).to_dict(),
        ]
        trail = blame_trail(events)
        assert trail["mediator"] == "#9"
        assert trail["trail"][0]["new"] == "#7"


# ---------------------------------------------------------------------------
# Non-perturbation: traced ≡ untraced, every engine × mediator
# ---------------------------------------------------------------------------

ENGINES = ("machine", "vm", "rvm")


def _outcome_key(result):
    return (result.kind, result.value, str(result.blame_label),
            result.steps, result.space_stats)


class TestNonPerturbation:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("mediator", ["coercion", "threesome"])
    @pytest.mark.parametrize("opt_level", [0, 2])
    def test_boundary_workloads(self, engine, mediator, opt_level):
        for term, expect in (
            (even_odd_boundary(12), "value"),
            (untyped_library_bad_result(), "blame"),
            (untyped_client_bad_argument(), "blame"),
        ):
            untraced = run_term(term, engine=engine, mediator=mediator,
                                opt_level=opt_level)
            sink = ListSink()
            with tracing(sink):
                traced = run_term(term, engine=engine, mediator=mediator,
                                  opt_level=opt_level)
            assert traced.kind == untraced.kind == expect
            assert _outcome_key(traced) == _outcome_key(untraced)
            kinds = {e["ev"] for e in sink.events}
            assert {"run_start", "run_end"} <= kinds

    def test_traced_even_odd_value(self):
        n = 10
        for engine in ENGINES:
            with tracing(ListSink()):
                result = run_term(even_odd_boundary(n), engine=engine)
            assert result.is_value and result.value == even_odd_expected(n)

    @given(lambda_b_programs())
    @settings(max_examples=25, deadline=None)
    def test_generated_programs(self, program):
        term, _ty = program
        for engine in ENGINES:
            for mediator in ("coercion", "threesome"):
                untraced = run_term(term, engine=engine, mediator=mediator,
                                    fuel=20_000)
                sink = RingBufferSink(capacity=512)
                with tracing(sink):
                    traced = run_term(term, engine=engine, mediator=mediator,
                                      fuel=20_000)
                assert _outcome_key(traced) == _outcome_key(untraced)

    def test_tracer_cleared_after_context(self):
        assert current_tracer() is None
        with tracing(ListSink()):
            assert current_tracer() is not None
        assert current_tracer() is None


# ---------------------------------------------------------------------------
# The snapshot fix: -O2 runs always report their inline-cache counters
# ---------------------------------------------------------------------------


class TestSnapshotCacheCounters:
    def test_o2_snapshot_carries_zero_counters(self):
        # A -O2 run whose caches were never consulted must still report
        # hits/misses (both zero) — the dropped-keys bug this PR fixes.
        result = run_term(untyped_library_bad_result(), engine="vm", opt_level=2)
        assert result.space_stats["cache_hits"] >= 0
        assert "cache_misses" in result.space_stats

    @pytest.mark.parametrize("engine", ["vm", "rvm"])
    def test_o0_snapshot_omits_counters(self, engine):
        result = run_term(even_odd_boundary(4), engine=engine, opt_level=0)
        assert "cache_hits" not in result.space_stats

    @pytest.mark.parametrize("engine", ["vm", "rvm"])
    def test_o2_snapshot_always_has_counters(self, engine):
        result = run_term(even_odd_boundary(4), engine=engine, opt_level=2)
        assert "cache_hits" in result.space_stats
        assert "cache_misses" in result.space_stats


# ---------------------------------------------------------------------------
# CLI surface: run --trace/--metrics, the trace subcommand, batch --metrics
# ---------------------------------------------------------------------------

import pathlib  # noqa: E402

from repro.cli import main as cli_main  # noqa: E402

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
@pytest.fixture
def square_program(tmp_path):
    path = tmp_path / "square.grad"
    path.write_text(SQUARE)
    return str(path)


@pytest.fixture
def blame_program():
    # Resolved from the repo root so the test is cwd-independent.
    path = (pathlib.Path(__file__).parent.parent
            / "examples" / "programs" / "boundary_blame.grad")
    return str(path)


class TestCLI:
    def test_run_trace_and_metrics_files(self, square_program, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert cli_main(["run", square_program, "--engine", "rvm", "--no-cache",
                         "--trace", str(trace), "--metrics", str(metrics)]) == 0
        events = [event_from_dict(json.loads(line))
                  for line in trace.read_text().splitlines()]
        kinds = [e["ev"] for e in (ev.to_dict() for ev in events)]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert events[0].program == square_program
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["run.count"] == 1
        assert snap["counters"]["run.outcome.value"] == 1
        assert "run" in snap["phases"]
        capsys.readouterr()

    def test_trace_subcommand_summary_and_timeline(self, square_program, capsys):
        assert cli_main(["trace", square_program, "--engine", "machine",
                         "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "36 : int" in out
        assert "trace:" in out and "events" in out
        assert "pending-mediators max=" in out
        assert '"pending_mediators"' in out

    def test_trace_subcommand_blame_prints_trail(self, blame_program, capsys):
        assert cli_main(["trace", blame_program, "--engine", "vm"]) == 1
        out = capsys.readouterr().out
        assert "blame ascription@" in out
        assert "failing mediator:" in out

    def test_trace_subcommand_chrome_export(self, square_program, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert cli_main(["trace", square_program, "--engine", "rvm",
                         "--format", "chrome", "-o", str(out_path)]) == 0
        capsys.readouterr()
        entries = json.loads(out_path.read_text())
        assert isinstance(entries, list) and entries
        assert all({"name", "ph", "ts"} <= set(e) for e in entries)

    def test_batch_embeds_metrics_in_aggregate(self, tmp_path, capsys):
        programs = tmp_path / "programs"
        programs.mkdir()
        (programs / "a.grad").write_text(SQUARE)
        (programs / "b.grad").write_text(SQUARE)
        metrics = tmp_path / "m.json"
        assert cli_main(["batch", str(programs), "--no-cache",
                         "--metrics", str(metrics)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3  # one per program + the aggregate, no extras
        aggregate = json.loads(lines[-1])["aggregate"]
        assert aggregate["metrics"]["counters"]["batch.outcome.value"] == 2
        file_snap = json.loads(metrics.read_text())
        assert file_snap == aggregate["metrics"]

    def test_batch_trace_tags_programs(self, tmp_path, capsys):
        programs = tmp_path / "programs"
        programs.mkdir()
        (programs / "a.grad").write_text(SQUARE)
        (programs / "b.grad").write_text(SQUARE)
        trace = tmp_path / "t.jsonl"
        assert cli_main(["batch", str(programs), "--no-cache",
                         "--trace", str(trace)]) == 0
        capsys.readouterr()
        starts = [json.loads(line) for line in trace.read_text().splitlines()
                  if json.loads(line)["ev"] == "run_start"]
        assert {s["program"].rsplit("/", 1)[-1] for s in starts} == {
            "a.grad", "b.grad"}
