"""Tests for Figure 2: the four subtyping relations, the Tangram lemma, meet, and safe casts."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given

from repro.core.labels import label
from repro.core.subtyping import (
    BOT,
    cast_safe_for,
    contains_bottom,
    gradual_meet,
    join,
    meet,
    subtype,
    subtype_naive,
    subtype_neg,
    subtype_pos,
    tangram_naive,
    tangram_subtype,
)
from repro.core.types import BOOL, DYN, INT, FunType, ProdType, all_types

from .strategies import types

SMALL_TYPES = all_types(3)
SMALL_TYPES_WITH_PRODUCTS = all_types(2, include_products=True)

I2I = FunType(INT, INT)
D2D = FunType(DYN, DYN)
P = label("p")


class TestOrdinarySubtyping:
    def test_base_reflexive(self):
        assert subtype(INT, INT)
        assert not subtype(INT, BOOL)

    def test_dyn_reflexive(self):
        assert subtype(DYN, DYN)

    def test_ground_types_below_dyn(self):
        assert subtype(INT, DYN)
        assert subtype(D2D, DYN)

    def test_function_type_below_dyn_requires_dyn_domain(self):
        # int→int <: ? fails because <: is contravariant in the domain.
        assert not subtype(I2I, DYN)
        assert subtype(FunType(DYN, INT), DYN)

    def test_dyn_not_below_base(self):
        assert not subtype(DYN, INT)

    def test_function_contravariance(self):
        # A function that accepts ? may stand in for one that accepts int...
        assert subtype(FunType(DYN, INT), FunType(INT, INT))
        # ...but not the other way around.
        assert not subtype(FunType(INT, INT), FunType(DYN, INT))
        # Covariant in the codomain.
        assert subtype(I2I, FunType(INT, DYN))
        assert not subtype(FunType(INT, DYN), I2I)
        assert subtype(I2I, I2I)

    def test_product_covariance(self):
        assert subtype(ProdType(INT, BOOL), ProdType(INT, BOOL))
        assert subtype(ProdType(INT, INT), ProdType(INT, DYN))
        assert not subtype(ProdType(INT, DYN), ProdType(INT, INT))

    @given(types(max_depth=3))
    def test_reflexivity(self, ty):
        assert subtype(ty, ty)

    def test_transitivity_on_small_types(self):
        for a, b, c in itertools.product(SMALL_TYPES[:12], repeat=3):
            if subtype(a, b) and subtype(b, c):
                assert subtype(a, c), (a, b, c)


class TestPositiveAndNegativeSubtyping:
    def test_anything_positive_below_dyn(self):
        for ty in SMALL_TYPES:
            assert subtype_pos(ty, DYN)

    def test_dyn_negative_below_anything(self):
        for ty in SMALL_TYPES:
            assert subtype_neg(DYN, ty)

    def test_positive_base(self):
        assert subtype_pos(INT, INT)
        assert not subtype_pos(INT, BOOL)
        assert not subtype_pos(DYN, INT)

    def test_negative_base(self):
        assert subtype_neg(INT, INT)
        assert not subtype_neg(INT, BOOL)
        assert subtype_neg(INT, DYN)

    def test_function_polarity_swap(self):
        # int→int <:+ ?→int  requires  ? <:− int, which holds.
        assert subtype_pos(I2I, FunType(DYN, INT))
        # int→int <:− ?→int  requires  ? <:+ int, which fails.
        assert not subtype_neg(I2I, FunType(DYN, INT))

    @given(types(max_depth=3))
    def test_positive_reflexive(self, ty):
        assert subtype_pos(ty, ty)

    @given(types(max_depth=3))
    def test_negative_reflexive(self, ty):
        assert subtype_neg(ty, ty)

    def test_ordinary_subtyping_antisymmetric_on_small_types(self):
        for a, b in itertools.product(SMALL_TYPES[:20], repeat=2):
            if a != b and subtype(a, b) and subtype(b, a):
                pytest.fail(f"<: not antisymmetric on {a}, {b}")

    def test_naive_subtyping_antisymmetric_on_small_types(self):
        for a, b in itertools.product(SMALL_TYPES[:20], repeat=2):
            if a != b and subtype_naive(a, b) and subtype_naive(b, a):
                pytest.fail(f"<:n not antisymmetric on {a}, {b}")

    def test_positive_subtyping_is_not_antisymmetric(self):
        # Literal reading of Figure 2: ?→? <:+ int→? and int→? <:+ ?→?
        # both hold (via ? <:− B and A <:− G ⟹ A <:− ?), so the paper's
        # antisymmetry remark does not apply to <:+ verbatim.  Recorded here
        # so a future rule change that restores antisymmetry is noticed.
        left, right = FunType(DYN, DYN), FunType(INT, DYN)
        assert subtype_pos(left, right) and subtype_pos(right, left)


class TestNaiveSubtyping:
    def test_everything_below_dyn(self):
        for ty in SMALL_TYPES:
            assert subtype_naive(ty, DYN)

    def test_covariant_in_both_positions(self):
        assert subtype_naive(I2I, FunType(DYN, DYN))
        assert subtype_naive(FunType(INT, BOOL), FunType(DYN, BOOL))
        assert not subtype_naive(FunType(DYN, BOOL), FunType(INT, BOOL))

    def test_bottom_below_everything(self):
        for ty in SMALL_TYPES:
            assert subtype_naive(BOT, ty)

    @given(types(max_depth=3))
    def test_reflexive(self, ty):
        assert subtype_naive(ty, ty)

    def test_transitivity_on_small_types(self):
        for a, b, c in itertools.product(SMALL_TYPES[:12], repeat=3):
            if subtype_naive(a, b) and subtype_naive(b, c):
                assert subtype_naive(a, c), (a, b, c)


class TestTangramLemma:
    """Lemma 4: ordinary subtyping factors into positive and negative subtyping."""

    def test_part1_exhaustive(self):
        for a, b in itertools.product(SMALL_TYPES, repeat=2):
            assert subtype(a, b) == tangram_subtype(a, b), (a, b)

    def test_part2_exhaustive(self):
        for a, b in itertools.product(SMALL_TYPES, repeat=2):
            assert subtype_naive(a, b) == tangram_naive(a, b), (a, b)

    def test_parts_with_products(self):
        for a, b in itertools.product(SMALL_TYPES_WITH_PRODUCTS, repeat=2):
            assert subtype(a, b) == tangram_subtype(a, b), (a, b)
            assert subtype_naive(a, b) == tangram_naive(a, b), (a, b)

    @given(types(max_depth=4), types(max_depth=4))
    def test_part1_random(self, a, b):
        assert subtype(a, b) == (subtype_pos(a, b) and subtype_neg(a, b))

    @given(types(max_depth=4), types(max_depth=4))
    def test_part2_random(self, a, b):
        assert subtype_naive(a, b) == (subtype_pos(a, b) and subtype_neg(b, a))


class TestMeetAndJoin:
    def test_meet_with_dyn_keeps_the_other_type(self):
        assert meet(DYN, I2I) == I2I
        assert meet(INT, DYN) == INT

    def test_meet_of_incompatible_bases_is_bottom(self):
        assert meet(INT, BOOL) == BOT

    def test_meet_is_componentwise(self):
        assert meet(FunType(INT, DYN), FunType(DYN, BOOL)) == FunType(INT, BOOL)
        assert meet(ProdType(INT, DYN), ProdType(DYN, BOOL)) == ProdType(INT, BOOL)

    def test_meet_can_bury_bottom(self):
        result = meet(FunType(INT, INT), FunType(BOOL, INT))
        assert contains_bottom(result)

    @given(types(max_depth=3), types(max_depth=3))
    def test_meet_is_a_lower_bound(self, a, b):
        lower = meet(a, b)
        assert subtype_naive(lower, a)
        assert subtype_naive(lower, b)

    @given(types(max_depth=3), types(max_depth=3))
    def test_meet_is_the_greatest_lower_bound(self, a, b):
        lower = meet(a, b)
        for candidate in SMALL_TYPES[:15]:
            if subtype_naive(candidate, a) and subtype_naive(candidate, b):
                assert subtype_naive(candidate, lower)

    @given(types(max_depth=3))
    def test_meet_is_idempotent(self, a):
        assert meet(a, a) == a

    @given(types(max_depth=3), types(max_depth=3))
    def test_meet_is_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    def test_join_of_base_and_dyn(self):
        assert join(INT, DYN) == DYN

    def test_join_of_incompatible_bases_is_none(self):
        assert join(INT, BOOL) is None

    def test_join_componentwise(self):
        assert join(FunType(INT, INT), FunType(DYN, INT)) == FunType(DYN, INT)

    def test_gradual_meet_rejects_bottom(self):
        assert gradual_meet(INT, BOOL) is None
        assert gradual_meet(FunType(INT, INT), FunType(BOOL, INT)) is None
        assert gradual_meet(DYN, I2I) == I2I


class TestSafeCasts:
    """The judgement (A ⇒p B) safe q of Figure 2."""

    def test_unrelated_label_is_always_safe(self):
        q = label("other")
        assert cast_safe_for(DYN, P, INT, q)

    def test_upcast_is_safe_for_its_own_label(self):
        # int→int <:+ ?, so positive blame on p is impossible.
        assert cast_safe_for(I2I, P, DYN, P)

    def test_projection_is_not_safe_for_its_own_label(self):
        assert not cast_safe_for(DYN, P, INT, P)

    def test_projection_is_safe_for_the_complement(self):
        # ? <:− int, so negative blame on p is impossible.
        assert cast_safe_for(DYN, P, INT, P.complement())

    def test_injection_is_safe_for_the_complement_when_negative_subtype(self):
        assert cast_safe_for(INT, P, DYN, P.complement())

    def test_exhaustive_safety_matches_subtyping(self):
        for a, b in itertools.product(SMALL_TYPES[:15], repeat=2):
            from repro.core.types import compatible

            if not compatible(a, b):
                continue
            assert cast_safe_for(a, P, b, P) == subtype_pos(a, b)
            assert cast_safe_for(a, P, b, P.complement()) == subtype_neg(a, b)
