"""Tests for the enforcement-semantics registry and its four backends.

PRs 1–7 grew two *Natural* presentations of run-time enforcement (canonical
coercions and threesomes); this PR refactors the mediator axis into the
:mod:`repro.semantics` registry and adds two non-Natural disciplines from
the blame-evaluation literature: **Transient** (shallow ground-tag checks,
no proxies, blame may diverge from Natural by design) and **Erasure** (all
mediation elided — the speed ceiling, never blames).  The suite covers the
registry itself, the transient derivation/composition algebra, the
end-to-end 4-semantics × 3-engines matrix, the erasure elision guarantee,
image round-trips, cache-key separation, and the extended
``check_mediator_oracle``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.compiler import compile_term, run_on_vm
from repro.compiler.bytecode import (
    COERCE,
    COMPOSE,
    LOAD_COERCE,
    PUSH_COERCE,
    all_code_objects,
)
from repro.compiler.cache import cache_key
from repro.compiler.rvm import run_on_rvm
from repro.compiler.serialize import (
    deserialize_image,
    serialize_image,
    source_fingerprint,
)
from repro.core.errors import EvaluationError, UsageError
from repro.core.labels import label
from repro.core.types import BOOL, INT, GROUND_FUN
from repro.gen.programs import (
    even_odd_boundary,
    pair_boundary_swap,
    safe_boundary_program,
    tail_countdown_boundary,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_s.coercions import (
    ID_DYN,
    FailS,
    FunCo,
    IdBase,
    Injection,
    Projection,
)
from repro.machine import run_on_machine
from repro.machine.policy import (
    ACT_GENERAL,
    ACT_IDENTITY,
    COERCION_POLICY,
    MachineBlame,
    SPACE_POLICY,
    THREESOME_POLICY,
)
from repro.machine.values import MConst, MPair
from repro.properties.bisimulation import check_mediator_oracle
from repro.semantics import (
    NATURAL_SEMANTICS_NAMES,
    SEMANTICS,
    SEMANTICS_NAMES,
    policy_for,
    resolve,
)
from repro.semantics.erasure import ERASED, ERASURE_POLICY, ErasedMediator
from repro.semantics.transient import (
    NO_CHECK,
    TRANSIENT_POLICY,
    TransientCheck,
    compose_transient,
    intern_transient,
    transient_of_coercion,
)
from repro.surface.interp import compile_source, run_source, run_term

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")

ID_INT = IdBase(INT)
INT_INJ = Injection(ID_INT, INT)          # idι ; int!
INT_PROJ = Projection(INT, P, ID_INT)     # int?p ; idι


class TestRegistry:
    def test_the_four_semantics_and_their_order(self):
        assert SEMANTICS_NAMES == ("coercion", "threesome", "transient", "erasure")
        assert tuple(SEMANTICS) == SEMANTICS_NAMES

    def test_capability_flags(self):
        assert all(SEMANTICS[name].blames for name in ("coercion", "threesome", "transient"))
        assert not SEMANTICS["erasure"].blames
        assert all(sem.space_bounded for sem in SEMANTICS.values())
        assert NATURAL_SEMANTICS_NAMES == ("coercion", "threesome")
        for name in SEMANTICS_NAMES:
            assert SEMANTICS[name].natural == (name in NATURAL_SEMANTICS_NAMES)

    def test_resolve_returns_the_entry_and_rejects_unknowns(self):
        assert resolve("transient") is SEMANTICS["transient"]
        with pytest.raises(UsageError, match="unknown mediator/semantics"):
            resolve("wrapsome")

    def test_policies_are_the_backend_singletons(self):
        assert policy_for("coercion") is SPACE_POLICY
        assert policy_for("threesome") is THREESOME_POLICY
        assert policy_for("transient") is TRANSIENT_POLICY
        assert policy_for("erasure") is ERASURE_POLICY

    def test_each_machine_runs_its_own_policy(self):
        for name, sem in SEMANTICS.items():
            assert sem.machine.policy is sem.policy, name

    def test_serialize_ids_and_cache_keys_are_distinct(self):
        assert len({sem.serialize_id for sem in SEMANTICS.values()}) == 4
        assert len({sem.cache_key for sem in SEMANTICS.values()}) == 4

    def test_old_dispatch_tables_are_gone(self):
        from repro.compiler import opt, vm

        assert not hasattr(opt, "_POLICIES")
        assert not hasattr(vm, "VM_BACKENDS")

    def test_legacy_machine_names_still_resolve_lazily(self):
        from repro.machine import MACHINE_S_THREESOME, MEDIATORS

        assert MEDIATORS == NATURAL_SEMANTICS_NAMES
        assert MACHINE_S_THREESOME is SEMANTICS["threesome"].machine


class TestTransientDerivation:
    def test_injections_and_ground_coercions_check_nothing(self):
        assert transient_of_coercion(INT_INJ) is NO_CHECK
        assert transient_of_coercion(ID_INT) is NO_CHECK
        assert transient_of_coercion(ID_DYN) is NO_CHECK
        # Higher-order obligations are dropped wholesale: s → t never checks.
        assert transient_of_coercion(FunCo(INT_PROJ, Injection(ID_INT, INT))) is NO_CHECK

    def test_a_projection_becomes_a_tag_check(self):
        t = transient_of_coercion(INT_PROJ)
        assert t.checks == ((INT, P),) and t.fail is None

    def test_a_projection_over_a_failure_keeps_both(self):
        t = transient_of_coercion(Projection(GROUND_FUN, P, FailS(INT, Q, BOOL)))
        assert t.checks == ((GROUND_FUN, P),)
        assert t.fail == Q

    def test_derivation_is_memoised_on_the_interned_coercion(self):
        assert transient_of_coercion(INT_PROJ) is transient_of_coercion(
            Projection(INT, P, IdBase(INT))
        )

    def test_interning_is_structural(self):
        a = intern_transient(TransientCheck(((INT, P),), None))
        b = intern_transient(TransientCheck(((INT, P),), None))
        assert a is b
        assert intern_transient(TransientCheck(((INT, Q),), None)) is not a


class TestTransientComposition:
    def test_composition_dedups_by_ground_keeping_the_earliest_label(self):
        first = intern_transient(TransientCheck(((INT, P),)))
        second = intern_transient(TransientCheck(((INT, Q), (BOOL, Q))))
        merged = compose_transient(first, second)
        assert merged.checks == ((INT, P), (BOOL, Q))

    def test_a_failure_in_first_shadows_second(self):
        first = intern_transient(TransientCheck((), fail=P))
        second = intern_transient(TransientCheck(((INT, Q),), fail=Q))
        assert compose_transient(first, second) is first

    def test_second_failure_survives_composition(self):
        first = intern_transient(TransientCheck(((INT, P),)))
        second = intern_transient(TransientCheck((), fail=Q))
        merged = compose_transient(first, second)
        assert merged.checks == ((INT, P)) or merged.checks == ((INT, P),)
        assert merged.fail == Q

    def test_composition_is_bounded_by_the_distinct_grounds(self):
        # Iterating composition can never grow past one check per ground —
        # the space bound that lets transient reuse the one-slot discipline.
        acc = NO_CHECK
        for lab in (P, Q, label("r"), label("s")):
            acc = compose_transient(acc, intern_transient(TransientCheck(((INT, lab),))))
        assert acc.checks == ((INT, P),)
        assert TRANSIENT_POLICY.size(acc) == 2

    def test_identity_and_classification(self):
        assert TRANSIENT_POLICY.is_identity(NO_CHECK)
        assert TRANSIENT_POLICY.classify(NO_CHECK) == ACT_IDENTITY
        nonempty = intern_transient(TransientCheck(((INT, P),)))
        assert TRANSIENT_POLICY.classify(nonempty) == ACT_GENERAL


class TestTransientApply:
    def test_passing_checks_return_the_value_unwrapped(self):
        v = MConst(7, INT)
        t = intern_transient(TransientCheck(((INT, P),)))
        assert TRANSIENT_POLICY.apply(v, t) is v

    def test_tag_mismatch_blames_the_check_label(self):
        t = intern_transient(TransientCheck(((BOOL, Q),)))
        with pytest.raises(MachineBlame) as exc:
            TRANSIENT_POLICY.apply(MConst(7, INT), t)
        assert exc.value.label == Q

    def test_function_tag_rejects_a_pair(self):
        t = intern_transient(TransientCheck(((GROUND_FUN, P),)))
        pair = MPair(MConst(1, INT), MConst(2, INT))
        with pytest.raises(MachineBlame) as exc:
            TRANSIENT_POLICY.apply(pair, t)
        assert exc.value.label == P

    def test_unconditional_failure_blames_after_checks_pass(self):
        t = intern_transient(TransientCheck(((INT, P),), fail=Q))
        with pytest.raises(MachineBlame) as exc:
            TRANSIENT_POLICY.apply(MConst(7, INT), t)
        assert exc.value.label == Q

    def test_transient_never_wraps(self):
        t = intern_transient(TransientCheck(((INT, P),)))
        assert not TRANSIENT_POLICY.is_fun_proxy(t)
        assert not TRANSIENT_POLICY.is_prod_proxy(t)
        with pytest.raises(EvaluationError):
            TRANSIENT_POLICY.fun_parts(t)


class TestErasurePolicy:
    def test_erased_is_a_singleton_identity(self):
        assert isinstance(ERASED, ErasedMediator)
        assert ERASURE_POLICY.is_identity(ERASED)
        assert ERASURE_POLICY.classify(ERASED) == ACT_IDENTITY
        assert ERASURE_POLICY.size(ERASED) == 0
        assert ERASURE_POLICY.compose(ERASED, ERASED) is ERASED

    def test_apply_is_the_identity_on_values(self):
        v = MConst(3, INT)
        assert ERASURE_POLICY.apply(v, ERASED) is v


SAFE_SOURCES = (
    "(: (: 21 ?) int)",
    "((lambda ([f : (-> int int)]) (f 2)) (: (lambda (x) x) ?))",
    "(fst (: (: (pair 1 #t) ?) (* int bool)))",
)

BLAMING_SOURCE = "(: (: 21 ?) bool)"


def _engines():
    return (
        ("machine", lambda term, sem: run_on_machine(term, "S", mediator=sem)),
        ("vm", lambda term, sem: run_on_vm(term, mediator=sem)),
        ("rvm", lambda term, sem: run_on_rvm(term, mediator=sem)),
    )


class TestFourByThreeMatrix:
    def test_all_semantics_and_engines_agree_on_safe_programs(self):
        for source in SAFE_SOURCES:
            term, _ = compile_source(source)
            expected = run_on_machine(term, "S", mediator="coercion").python_value()
            for engine, run in _engines():
                for sem in SEMANTICS_NAMES:
                    outcome = run(term, sem)
                    assert outcome.is_value, f"{engine}/{sem}: {outcome.kind}"
                    assert outcome.python_value() == expected, f"{engine}/{sem}"

    def test_blaming_semantics_blame_and_erasure_does_not(self):
        term, _ = compile_source(BLAMING_SOURCE)
        for engine, run in _engines():
            for sem in ("coercion", "threesome", "transient"):
                outcome = run(term, sem)
                assert outcome.is_blame, f"{engine}/{sem}"
            erased = run(term, "erasure")
            assert erased.is_value and erased.python_value() == 21, engine

    def test_transient_blame_labels_match_natural_on_first_order_projections(self):
        # For a bad base-type projection both disciplines inspect the same
        # tag under the same label, so the labels coincide here even though
        # they may diverge on higher-order programs.
        term, _ = compile_source(BLAMING_SOURCE)
        natural = run_on_vm(term, mediator="coercion")
        transient = run_on_vm(term, mediator="transient")
        assert natural.label == transient.label

    def test_erasure_never_blames_the_known_blamers(self):
        for program in (untyped_library_bad_result(), untyped_client_bad_argument()):
            for engine, run in _engines():
                outcome = run(program, "erasure")
                assert not outcome.is_blame, engine


class TestErasureElision:
    def test_o1_removes_every_mediation_instruction(self):
        mediation = {COERCE, COMPOSE, LOAD_COERCE, PUSH_COERCE}
        for source in SAFE_SOURCES + (BLAMING_SOURCE,):
            term, _ = compile_source(source)
            for opt_level in (1, 2):
                code = compile_term(term, mediator="erasure", opt_level=opt_level)
                for obj in all_code_objects(code):
                    ops = {op for op, _ in obj.instructions}
                    assert not (ops & mediation), f"-O{opt_level}: {source}"

    def test_erased_pool_survives_at_o0(self):
        # Unoptimized code still carries the mediation instructions; the
        # pool entries are all the ERASED singleton and apply as identity.
        term, _ = compile_source(BLAMING_SOURCE)
        code = compile_term(term, mediator="erasure", opt_level=0)
        assert all(entry is ERASED for entry in code.pool.coercions)
        outcome = run_on_vm(term, mediator="erasure", opt_level=0)
        assert outcome.is_value and outcome.python_value() == 21


class TestSpaceBounds:
    def test_transient_pending_stays_within_the_one_slot_discipline(self):
        for program in (tail_countdown_boundary(200), even_odd_boundary(100)):
            outcome = run_on_vm(program, mediator="transient")
            assert outcome.is_value
            assert outcome.stats["max_pending_mediators"] <= 1

    def test_erasure_has_no_pending_mediators_after_elision(self):
        outcome = run_on_vm(even_odd_boundary(100), mediator="erasure")
        assert outcome.is_value
        assert outcome.stats["max_pending_mediators"] == 0


class TestExtendedOracle:
    def test_oracle_passes_the_four_backend_matrix_on_workloads(self):
        for program in (
            even_odd_boundary(8),
            typed_loop_untyped_step(4),
            twice_boundary(3),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            safe_boundary_program(),
            pair_boundary_swap(),
        ):
            report = check_mediator_oracle(program)
            assert report.ok, report.reason

    @given(lambda_b_programs())
    @settings(max_examples=20, deadline=None)
    def test_oracle_on_generated_programs(self, program):
        term, _ = program
        report = check_mediator_oracle(term)
        assert report.ok, report.reason


class TestImageRoundTrips:
    def _roundtrip(self, source: str, mediator: str, opt_level: int = 0):
        term, ty = compile_source(source)
        code = compile_term(term, mediator=mediator, opt_level=opt_level)
        data = serialize_image(
            code, source_hash=source_fingerprint(source), static_type=ty
        )
        return code, deserialize_image(data)

    def test_transient_images_reintern_their_checks(self):
        code, image = self._roundtrip(BLAMING_SOURCE, "transient")
        assert image.info.mediator == "transient"
        for original, loaded in zip(code.pool.coercions, image.code.pool.coercions):
            assert loaded is original  # structural interning restores identity
        from repro.compiler.vm import run_code

        outcome = run_code(image.code)
        assert outcome.is_blame

    def test_transient_failure_entries_round_trip(self):
        source = "((lambda ([f : (-> int int)]) (f 2)) (: #t ?))"
        code, image = self._roundtrip(source, "transient")
        assert any(
            isinstance(e, TransientCheck) and (e.checks or e.fail is not None)
            for e in image.code.pool.coercions
        )

    def test_erasure_images_round_trip_to_the_singleton(self):
        code, image = self._roundtrip(BLAMING_SOURCE, "erasure")
        assert image.info.mediator == "erasure"
        assert all(entry is ERASED for entry in image.code.pool.coercions)
        from repro.compiler.vm import run_code

        outcome = run_code(image.code)
        assert outcome.is_value and outcome.python_value() == 21


class TestCacheKeys:
    def test_each_semantics_gets_its_own_cache_key(self):
        h = source_fingerprint("(: (: 21 ?) int)")
        keys = {cache_key(h, 2, name) for name in SEMANTICS_NAMES}
        assert len(keys) == 4

    def test_unknown_semantics_is_rejected_at_the_key(self):
        with pytest.raises(UsageError):
            cache_key(source_fingerprint("1"), 2, "wrapsome")


class TestSurfaceSemanticsKnob:
    def test_run_source_accepts_the_semantics_spelling(self):
        for sem in SEMANTICS_NAMES:
            result = run_source("(: (: 21 ?) int)", engine="vm", semantics=sem)
            assert result.is_value and result.value == 21
            assert result.semantics == sem
            assert result.mediator == sem

    def test_run_term_threads_transient_and_erasure_through(self):
        term, ty = compile_source(BLAMING_SOURCE)
        blamed = run_term(term, ty, engine="vm", semantics="transient")
        assert blamed.is_blame
        erased = run_term(term, ty, engine="rvm", semantics="erasure")
        assert erased.is_value and erased.value == 21

    def test_subst_engine_supports_only_the_coercion_semantics(self):
        term, ty = compile_source("(: (: 21 ?) int)")
        with pytest.raises(UsageError):
            run_term(term, ty, engine="subst", semantics="erasure")


class TestErasureAgreesWithNaturalProperty:
    """Satellite 3: on blame-free programs Erasure is observationally the
    Natural semantics minus enforcement — same values, never a blame exit —
    on both the stack VM and the register VM."""

    @given(lambda_b_programs())
    @settings(max_examples=30, deadline=None)
    def test_erasure_agrees_with_natural_on_blame_free_programs(self, program):
        term, _ = program
        natural = run_on_vm(term)
        for run in (run_on_vm, run_on_rvm):
            try:
                erased = run(term, mediator="erasure")
            except EvaluationError:
                # The elided guard would have intercepted this as blame — a
                # dynamic type error is only legitimate when Natural did not
                # produce a value (and it is still not a blame exit).
                assert not natural.is_value
                continue
            assert not erased.is_blame  # erasure can never exit 1
            if natural.is_value and erased.is_value:
                assert erased.python_value() == natural.python_value()
