"""Tests for the bytecode optimizer (repro.compiler.opt) and its VM support.

The optimizer's contract: ``-O1``/``-O2`` never change observables — the
projected value, the blame label, timeout behaviour — and never *grow* the
pending-mediator footprint, on either mediator backend.  The ``-O0`` stream
is the oracle throughout.  The rest pins down the mechanics: identity
elision, static pre-composition through ``#``/``∘``, jump remapping,
superinstruction fusion and packing, disassembler round trips of fused
streams, the inline mediator caches, and the single-sourced fuel defaults.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.compiler import (
    DEFAULT_OPT_LEVEL,
    SUPERINSTRUCTIONS,
    all_code_objects,
    compile_term,
    disassemble,
    hot_pairs,
    instruction_streams,
    lower_program,
    optimize,
    parse_disassembly,
    run_code,
    run_on_vm,
)
from repro.compiler.bytecode import (
    COERCE,
    COMPOSE,
    JUMP,
    JUMP_IF_FALSE,
    LOAD,
    LOAD2,
    LOAD_CALL,
    LOAD_TAILCALL,
    OPCODE_NAMES,
    PRIM_JUMP_IF_FALSE,
    PUSH_PRIM,
    TAILCALL,
    pack_operands,
    unpack_operands,
)
from repro.core.labels import label
from repro.core.terms import App, Cast, Coerce, If, Lam, Let, Op, Var, const_bool, const_int
from repro.core.types import DYN, INT, FunType
from repro.gen.programs import (
    WORKLOADS,
    even_odd_boundary,
    fib_boundary,
    let_chain_boundary,
    pair_boundary_swap,
    tail_countdown_boundary,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_s.coercions import identity_for
from repro.machine import MEDIATORS
from repro.translate import b_to_s

from .strategies import lambda_b_programs

P = label("p")


def _outcome_key(outcome):
    if outcome.is_value:
        return ("value", outcome.python_value())
    if outcome.is_blame:
        return ("blame", outcome.label)
    return ("timeout", outcome.stats["steps"])


# ---------------------------------------------------------------------------
# O0 vs O1 vs O2: observables agree, footprint only shrinks
# ---------------------------------------------------------------------------


class TestLevelsAgree:
    @pytest.mark.parametrize("mediator", MEDIATORS)
    @pytest.mark.parametrize(
        "builder, size",
        [
            (even_odd_boundary, 41),
            (typed_loop_untyped_step, 50),
            (tail_countdown_boundary, 64),
            (let_chain_boundary, 25),
            (fib_boundary, 10),
            (twice_boundary, 5),
        ],
    )
    def test_levels_agree_on_workloads(self, builder, size, mediator):
        outcomes = [
            run_code(compile_term(builder(size), mediator=mediator, opt_level=level))
            for level in (0, 1, 2)
        ]
        keys = [_outcome_key(o) for o in outcomes]
        assert keys[0] == keys[1] == keys[2]
        pendings = [o.stats["max_pending_mediators"] for o in outcomes]
        assert pendings[2] <= pendings[1] <= pendings[0]

    @pytest.mark.parametrize("mediator", MEDIATORS)
    @pytest.mark.parametrize(
        "term", [untyped_library_bad_result(), untyped_client_bad_argument()]
    )
    def test_blame_labels_survive_optimization(self, term, mediator):
        o0 = run_on_vm(term, mediator=mediator, opt_level=0)
        o2 = run_on_vm(term, mediator=mediator, opt_level=2)
        assert o0.is_blame and o2.is_blame
        assert o0.label == o2.label

    def test_all_registered_workloads(self):
        sizes = {"deep_cast_chain": 6}
        for name, builder in WORKLOADS.items():
            term = builder(sizes.get(name, 12))
            for mediator in MEDIATORS:
                o0 = run_on_vm(term, mediator=mediator, opt_level=0)
                o2 = run_on_vm(term, mediator=mediator, opt_level=2)
                assert _outcome_key(o0) == _outcome_key(o2), (name, mediator)

    def test_timeouts_report_fuel_at_every_level(self):
        omega = App(Lam("x", DYN, App(Var("x"), Var("x"))),
                    Lam("x", DYN, App(Var("x"), Var("x"))))
        for level in (0, 1, 2):
            outcome = run_on_vm(omega, fuel=3_000, opt_level=level)
            assert outcome.is_timeout
            assert outcome.stats["steps"] == 3_000

    @given(lambda_b_programs())
    @settings(max_examples=60, deadline=None)
    def test_o2_agrees_with_o0_on_generated_programs(self, program):
        """The satellite property: -O2 agrees with -O0 on outcome, blame
        label, timeout step count, and space profile, under both mediators."""
        term, _ = program
        for mediator in MEDIATORS:
            o0 = run_on_vm(term, mediator=mediator, opt_level=0)
            o2 = run_on_vm(term, mediator=mediator, opt_level=2)
            assert o0.kind == o2.kind, mediator
            if o0.is_value:
                assert o0.python_value() == o2.python_value()
            elif o0.is_blame:
                assert o0.label == o2.label
            else:  # both timed out: the step count is the fuel, identically
                assert o0.stats["steps"] == o2.stats["steps"]
            assert (
                o2.stats["max_pending_mediators"] <= o0.stats["max_pending_mediators"]
            ), mediator
            assert (
                o2.stats["max_pending_mediators"] <= o2.stats["max_kont_depth"] + 1
            ), mediator


# ---------------------------------------------------------------------------
# Static coercion elision and pre-composition
# ---------------------------------------------------------------------------


class TestElision:
    def test_canonical_identity_coercions_are_elided(self):
        # id at int → int survives lowering (it is not a bare idι) but is a
        # canonical identity: -O1 drops it (here it sits in tail position,
        # so the lowered form is a COMPOSE).
        fun_int = FunType(INT, INT)
        term = Coerce(Lam("x", INT, Var("x")), identity_for(fun_int))
        code = lower_program(term)
        assert any(op in (COERCE, COMPOSE) for op, _ in code.instructions)
        optimize(code, 1)
        assert all(op not in (COERCE, COMPOSE) for op, _ in code.instructions)

    def test_adjacent_coerces_precompose(self):
        # (x : int ⇒ ? ⇒ int) round trip in *non-tail* position: two
        # adjacent COERCEs at -O0, at most one after pre-composition.
        chain = Cast(Cast(const_int(7), INT, DYN, P), DYN, INT, P)
        term = b_to_s(Op("+", (chain, const_int(0))))
        code = lower_program(term)
        coerces = [op for op, _ in code.instructions if op == COERCE]
        assert len(coerces) >= 2
        optimize(code, 1)
        assert len([op for op, _ in code.instructions if op == COERCE]) <= 1
        assert run_code(code).python_value() == 7

    def test_precomposition_collapses_to_identity(self):
        # inject; project with the same label composes to id[int]: both drop.
        term = b_to_s(Cast(Cast(const_int(7), INT, DYN, P), DYN, INT, P))
        code = optimize(lower_program(term), 1)
        assert all(op != COERCE and op != COMPOSE for op, _ in code.instructions)
        assert run_code(code).python_value() == 7

    def test_adjacent_composes_precompose_in_reverse_order(self):
        # Nested tail coercions emit COMPOSE s1; COMPOSE s2 — the merge must
        # be s2 # s1 (the later instruction applies first).  Blame tells the
        # orders apart: the countdown workload exercises this under blame.
        code = lower_program(b_to_s(tail_countdown_boundary(8)))
        composes = sum(1 for obj in all_code_objects(code)
                       for op, _ in obj.instructions if op == COMPOSE)
        assert composes >= 2
        optimized = optimize(lower_program(b_to_s(tail_countdown_boundary(8))), 1)
        composes_after = sum(1 for obj in all_code_objects(optimized)
                             for op, _ in obj.instructions if op == COMPOSE)
        assert composes_after < composes
        assert run_code(optimized).python_value() is True

    def test_elision_does_not_touch_jump_structure(self):
        # A branch whose arms both coerce: jumps must still land correctly.
        term = b_to_s(
            If(
                const_bool(True),
                Cast(const_int(1), INT, DYN, P),
                Cast(const_int(2), INT, DYN, P),
            )
        )
        code = optimize(lower_program(term), 1)
        outcome = run_code(code)
        assert outcome.is_value and outcome.python_value() == 1


# ---------------------------------------------------------------------------
# Superinstruction fusion
# ---------------------------------------------------------------------------


class TestFusion:
    def test_hot_pairs_get_fused(self):
        code = compile_term(even_odd_boundary(6), opt_level=2)
        opcodes = {op for obj in all_code_objects(code) for op, _ in obj.instructions}
        fused = opcodes & set(SUPERINSTRUCTIONS)
        assert LOAD2 in fused
        assert PRIM_JUMP_IF_FALSE in fused or PUSH_PRIM in fused

    def test_load_tailcall_appears_in_optimized_fix_apply(self):
        # The hottest (LOAD, TAILCALL) site of all is the built-in fix
        # unrolling step, which the VM runs at -O2 in its fused form.
        from repro.compiler.vm import _FIX_APPLY, _FIX_APPLY_O2

        assert [op for op, _ in _FIX_APPLY.instructions].count(LOAD) == 3
        fused_ops = [op for op, _ in _FIX_APPLY_O2.instructions]
        assert LOAD_TAILCALL in fused_ops
        assert len(fused_ops) < len(_FIX_APPLY.instructions)

    def test_load_call_fuses_single_load_argument(self):
        # fun is a closure expression, arg a variable: LOAD; CALL fuses.
        term = Let(
            "x",
            const_int(20),
            App(Lam("y", INT, Op("+", (Var("y"), const_int(1)))), Var("x")),
        )
        code = compile_term(term, opt_level=2)
        opcodes = {op for obj in all_code_objects(code) for op, _ in obj.instructions}
        assert LOAD_CALL in opcodes or LOAD_TAILCALL in opcodes
        assert run_code(code).python_value() == 21

    def test_fusion_never_crosses_a_jump_target(self):
        for builder in (even_odd_boundary, fib_boundary, typed_loop_untyped_step):
            code = compile_term(builder(5), opt_level=2)
            for obj in all_code_objects(code):
                targets = set()
                for op, operand in obj.instructions:
                    if op == JUMP or op == JUMP_IF_FALSE:
                        targets.add(operand)
                    elif op == PRIM_JUMP_IF_FALSE:
                        targets.add(unpack_operands(op, operand)[1])
                n = len(obj.instructions)
                assert all(0 <= t <= n for t in targets), obj.name

    def test_pack_unpack_round_trip(self):
        for fused, (op1, op2) in SUPERINSTRUCTIONS.items():
            a = 0 if op1 in (TAILCALL,) else 19
            b = 0 if op2 in (TAILCALL,) else 7
            packed = pack_operands(op1, a, op2, b)
            ra, rb = unpack_operands(fused, packed)
            # Operand-less halves decode as 0; the carried ones round-trip.
            from repro.compiler.bytecode import NO_OPERAND

            if op1 not in NO_OPERAND:
                assert ra == a
            if op2 not in NO_OPERAND:
                assert rb == b

    def test_every_fused_opcode_is_named_and_tabled(self):
        for fused in SUPERINSTRUCTIONS:
            assert fused in OPCODE_NAMES
        for code_obj in all_code_objects(compile_term(fib_boundary(6), opt_level=2)):
            for op, _ in code_obj.instructions:
                assert op in OPCODE_NAMES

    def test_o0_streams_contain_no_superinstructions(self):
        code = compile_term(even_odd_boundary(6), opt_level=0)
        opcodes = {op for obj in all_code_objects(code) for op, _ in obj.instructions}
        assert not (opcodes & set(SUPERINSTRUCTIONS))

    def test_branches_still_compute_correctly_after_fusion(self):
        # if-heavy program: JUMP_IF_FALSE remapping + PRIM fusion together.
        term = Let(
            "n",
            const_int(9),
            If(
                Op("even?", (Var("n"),)),
                Op("+", (Var("n"), const_int(1))),
                Op("-", (Var("n"), const_int(1))),
            ),
        )
        for level in (0, 1, 2):
            outcome = run_code(compile_term(term, opt_level=level))
            assert outcome.python_value() == 8


# ---------------------------------------------------------------------------
# Disassembler round trips of optimized streams
# ---------------------------------------------------------------------------


class TestFusedDisassembly:
    @pytest.mark.parametrize("level", [0, 1, 2])
    @pytest.mark.parametrize(
        "term_b",
        [
            even_odd_boundary(3),
            fib_boundary(3),
            pair_boundary_swap(),
            typed_loop_untyped_step(3),
            let_chain_boundary(4),
        ],
    )
    def test_round_trip(self, term_b, level):
        code = compile_term(term_b, opt_level=level)
        assert parse_disassembly(disassemble(code)) == instruction_streams(code)

    def test_fused_comment_names_both_halves(self):
        text = disassemble(compile_term(typed_loop_untyped_step(3), opt_level=2))
        assert "LOAD2" in text
        # The comment decodes the packed operand into the original pair.
        assert "LOAD " in text and " + " in text


# ---------------------------------------------------------------------------
# Inline mediator caches
# ---------------------------------------------------------------------------


class TestInlineCaches:
    def test_caches_allocated_only_at_o2(self):
        for level, expect in ((0, False), (1, False), (2, True)):
            code = compile_term(even_odd_boundary(3), opt_level=level)
            for obj in all_code_objects(code):
                assert (obj.caches is not None) is expect
                assert obj.opt_level == level

    def test_cache_cells_fill_and_hit_on_boundary_loops(self):
        code = compile_term(even_odd_boundary(40), opt_level=2)
        first = run_code(code)
        cells = [c for obj in all_code_objects(code) for c in (obj.caches or []) if c]
        assert cells, "a boundary loop must have filled at least one cache cell"
        # Re-running with warm caches changes nothing observable.
        second = run_code(code)
        assert first.python_value() == second.python_value()
        assert first.stats["max_pending_mediators"] == second.stats["max_pending_mediators"]
        assert first.stats["steps"] == second.stats["steps"]

    def test_caches_are_backend_private(self):
        # The same program compiled per backend gets distinct code objects,
        # so cache cells never mix coercions and threesomes.
        coercion = compile_term(even_odd_boundary(20), mediator="coercion")
        threesome = compile_term(even_odd_boundary(20), mediator="threesome")
        run_code(coercion), run_code(threesome)
        for obj in all_code_objects(coercion):
            assert obj.pool.mediator == "coercion"
        for obj in all_code_objects(threesome):
            assert obj.pool.mediator == "threesome"

    def test_proxy_call_cache_preserves_higher_order_results(self):
        outcome0 = run_on_vm(twice_boundary(3), opt_level=0)
        outcome2 = run_on_vm(twice_boundary(3), opt_level=2)
        assert outcome0.python_value() == outcome2.python_value() == 5


# ---------------------------------------------------------------------------
# Profiling and defaults
# ---------------------------------------------------------------------------


class TestProfilingAndDefaults:
    def test_hot_pairs_reports_adjacent_pairs(self):
        code = compile_term(even_odd_boundary(10), opt_level=0)
        pairs = hot_pairs(code)
        assert pairs and all(count > 0 for _, count in pairs)
        assert (LOAD, LOAD) in dict(pairs)

    def test_pair_counts_ride_on_stats(self):
        from repro.compiler import THE_VM

        counts: dict = {}
        outcome = THE_VM.run(compile_term(even_odd_boundary(4)), pair_counts=counts)
        assert outcome.stats["opcode_pairs"] == counts
        # Profiling never perturbs the outcome.
        assert outcome.python_value() is run_on_vm(even_odd_boundary(4)).python_value()

    def test_default_opt_level_is_two(self):
        assert DEFAULT_OPT_LEVEL == 2
        code = compile_term(const_int(1))
        assert code.opt_level == 2

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError):
            optimize(lower_program(b_to_s(const_int(1))), 3)

    def test_fuel_constants_are_single_sourced(self):
        from repro.core import fuel
        from repro.compiler import vm
        from repro.machine import cek
        from repro.lambda_b import reduction as reduction_b
        from repro.surface import interp

        assert vm.DEFAULT_VM_FUEL is fuel.DEFAULT_VM_FUEL
        assert cek.DEFAULT_MACHINE_FUEL is fuel.DEFAULT_MACHINE_FUEL
        assert reduction_b.DEFAULT_FUEL is fuel.DEFAULT_REDUCTION_FUEL
        assert interp.DEFAULT_FUEL == {
            "vm": fuel.DEFAULT_VM_FUEL,
            "rvm": fuel.DEFAULT_RVM_FUEL,
            "machine": fuel.DEFAULT_MACHINE_FUEL,
            "subst": fuel.DEFAULT_SUBST_FUEL,
        }
