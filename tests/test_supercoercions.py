"""Tests for the supercoercion baseline of §6.3 (Garcia 2013)."""

from __future__ import annotations

from repro.core.labels import label
from repro.core.types import BOOL, DYN, GROUND_FUN, INT
from repro.lambda_c.coercions import (
    Fail,
    FunCoercion,
    Identity,
    Inject,
    Project,
    Sequence,
    check_coercion,
)
from repro.lambda_s.coercions import (
    FailS,
    FunCo,
    IdBase,
    IdDyn,
    Injection,
    Projection,
    compose,
)
from repro.supercoercions import (
    SArrow,
    SFail,
    SFailProj,
    SIdentity,
    SInject,
    SProject,
    SProjectInject,
    canonical_meaning,
    compose_via_meanings,
    meaning,
)
from repro.translate.c_to_s import coercion_to_space

P = label("p")
Q = label("q")
L1, L2 = label("l1"), label("l2")


class TestMeaningFunction:
    """Each clause of the paper's N(·) table."""

    def test_identity(self):
        assert meaning(SIdentity(INT)) == Identity(INT)
        assert meaning(SIdentity(DYN)) == Identity(DYN)

    def test_fail(self):
        assert meaning(SFail(L1, INT, BOOL)) == Fail(INT, L1, BOOL)

    def test_fail_with_projection(self):
        assert meaning(SFailProj(L1, INT, L2, BOOL)) == Sequence(
            Project(INT, L2), Fail(INT, L1, BOOL)
        )

    def test_injection_and_projection(self):
        assert meaning(SInject(INT)) == Inject(INT)
        assert meaning(SProject(INT, P)) == Project(INT, P)

    def test_projection_then_injection(self):
        assert meaning(SProjectInject(INT, P)) == Sequence(Project(INT, P), Inject(INT))

    def test_plain_arrow(self):
        sc = SArrow(SIdentity(DYN), SIdentity(DYN))
        assert meaning(sc) == FunCoercion(Identity(DYN), Identity(DYN))

    def test_arrow_with_injection_after(self):
        sc = SArrow(SIdentity(DYN), SIdentity(DYN), inject_after=True)
        assert meaning(sc) == Sequence(
            FunCoercion(Identity(DYN), Identity(DYN)), Inject(GROUND_FUN)
        )

    def test_arrow_with_projection_before(self):
        sc = SArrow(SIdentity(DYN), SIdentity(DYN), project_label=P)
        assert meaning(sc) == Sequence(
            Project(GROUND_FUN, P), FunCoercion(Identity(DYN), Identity(DYN))
        )

    def test_arrow_with_both(self):
        sc = SArrow(SIdentity(DYN), SIdentity(DYN), inject_after=True, project_label=P)
        expected = Sequence(
            Sequence(Project(GROUND_FUN, P), FunCoercion(Identity(DYN), Identity(DYN))),
            Inject(GROUND_FUN),
        )
        assert meaning(sc) == expected


class TestCanonicalForms:
    """The canonical λS form of every supercoercion shape."""

    def test_identity_and_primitives(self):
        assert canonical_meaning(SIdentity(INT)) == IdBase(INT)
        assert canonical_meaning(SIdentity(DYN)) == IdDyn()
        assert canonical_meaning(SInject(INT)) == Injection(IdBase(INT), INT)
        assert canonical_meaning(SProject(INT, P)) == Projection(INT, P, IdBase(INT))

    def test_projection_then_injection_stays_canonical(self):
        canonical = canonical_meaning(SProjectInject(INT, P))
        assert canonical == Projection(INT, P, Injection(IdBase(INT), INT))

    def test_fail_forms(self):
        assert canonical_meaning(SFail(L1, INT, BOOL)) == FailS(INT, L1, BOOL)
        assert canonical_meaning(SFailProj(L1, INT, L2, BOOL)) == Projection(
            INT, L2, FailS(INT, L1, BOOL)
        )

    def test_arrow_forms(self):
        plain = canonical_meaning(SArrow(SIdentity(DYN), SIdentity(DYN)))
        assert plain == FunCo(IdDyn(), IdDyn())
        wrapped = canonical_meaning(
            SArrow(SIdentity(DYN), SIdentity(DYN), inject_after=True, project_label=P)
        )
        assert wrapped == Projection(
            GROUND_FUN, P, Injection(FunCo(IdDyn(), IdDyn()), GROUND_FUN)
        )

    def test_meanings_are_well_typed(self):
        cases = [
            (SIdentity(INT), INT),
            (SInject(INT), INT),
            (SProject(INT, P), DYN),
            (SProjectInject(INT, P), DYN),
            (SFailProj(L1, INT, L2, BOOL), DYN),
            (SArrow(SIdentity(DYN), SIdentity(DYN), inject_after=True, project_label=P), DYN),
        ]
        for sc, source in cases:
            check_coercion(meaning(sc), source)  # must not raise


class TestCompositionViaSharp:
    """The ten-line # subsumes Garcia's sixty-case composition table."""

    def test_injection_meets_projection(self):
        assert compose_via_meanings(SInject(INT), SProject(INT, P)) == IdBase(INT)
        assert compose_via_meanings(SInject(INT), SProject(BOOL, P)) == FailS(INT, P, BOOL)

    def test_round_trip_then_round_trip(self):
        once = compose_via_meanings(SProjectInject(INT, P), SProjectInject(INT, Q))
        assert once == Projection(INT, P, Injection(IdBase(INT), INT))

    def test_arrow_meets_projection_arrow(self):
        exported = SArrow(SIdentity(DYN), SIdentity(DYN), inject_after=True)
        imported = SArrow(SIdentity(DYN), SIdentity(DYN), project_label=Q)
        composed = compose_via_meanings(exported, imported)
        assert composed == FunCo(IdDyn(), IdDyn())

    def test_agrees_with_composing_the_meanings_in_lambda_c(self):
        pairs = [
            (SInject(INT), SProject(INT, P)),
            (SProjectInject(INT, P), SProjectInject(INT, Q)),
            (
                SArrow(SIdentity(DYN), SIdentity(DYN), inject_after=True),
                SArrow(SIdentity(DYN), SIdentity(DYN), project_label=Q),
            ),
        ]
        for first, second in pairs:
            via_sharp = compose_via_meanings(first, second)
            via_sequence = coercion_to_space(Sequence(meaning(first), meaning(second)))
            assert via_sharp == via_sequence
