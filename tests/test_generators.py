"""Tests for the random generators themselves (they underpin every property test)."""

from __future__ import annotations

import random

from repro.core.types import DYN, compatible
from repro.gen.coercions_gen import (
    random_coercion,
    random_composable_space_pair,
    random_space_coercion,
    random_structural_coercion,
)
from repro.gen.terms_gen import TermGenerator, random_lambda_b_term, random_programs
from repro.gen.types_gen import (
    random_cast_path,
    random_compatible_type,
    random_type,
    random_type_pair,
)
from repro.lambda_b.syntax import casts_in
from repro.lambda_b.typecheck import type_of
from repro.lambda_c.coercions import check_coercion
from repro.lambda_s.coercions import check_space_coercion


class TestTypeGenerators:
    def test_random_types_respect_the_depth_bound(self):
        rng = random.Random(1)
        from repro.core.types import type_height

        for _ in range(200):
            assert type_height(random_type(rng, depth=3)) <= 3

    def test_random_compatible_types_are_compatible(self):
        rng = random.Random(2)
        for _ in range(200):
            ty = random_type(rng, 3)
            other = random_compatible_type(rng, ty, 3)
            assert compatible(ty, other)

    def test_random_type_pairs(self):
        rng = random.Random(3)
        for _ in range(100):
            a, b = random_type_pair(rng)
            assert compatible(a, b)

    def test_cast_paths_chain_compatibly(self):
        rng = random.Random(4)
        path = random_cast_path(rng, 6)
        assert len(path) == 7
        for a, b in zip(path, path[1:]):
            assert compatible(a, b)

    def test_cast_path_respects_start(self):
        rng = random.Random(5)
        path = random_cast_path(rng, 3, start=DYN)
        assert path[0] == DYN

    def test_generation_is_reproducible_from_the_seed(self):
        assert random_type(random.Random(42), 3) == random_type(random.Random(42), 3)


class TestCoercionGenerators:
    def test_random_coercions_type_check(self):
        rng = random.Random(6)
        for _ in range(100):
            coercion, source, target = random_coercion(rng)
            assert check_coercion(coercion, source) == target

    def test_random_structural_coercions_type_check(self):
        rng = random.Random(7)
        for _ in range(60):
            coercion, source, target = random_structural_coercion(rng)
            assert check_coercion(coercion, source) == target

    def test_random_space_coercions_type_check(self):
        from repro.core.types import UnknownType, types_equal

        rng = random.Random(8)
        for _ in range(100):
            coercion, source, target = random_space_coercion(rng)
            result = check_space_coercion(coercion, source)
            assert isinstance(result, UnknownType) or types_equal(result, target)

    def test_composable_pairs_share_the_middle_type(self):
        from repro.lambda_s.coercions import compose

        rng = random.Random(9)
        for _ in range(60):
            s, t, source, middle, target = random_composable_space_pair(rng)
            compose(s, t)  # must not raise


class TestTermGenerators:
    def test_generated_terms_are_closed_and_well_typed(self):
        for seed in range(30):
            term = random_lambda_b_term(seed)
            type_of(term)

    def test_generated_terms_contain_casts_often_enough(self):
        with_casts = sum(1 for seed in range(40) if casts_in(random_lambda_b_term(seed)))
        assert with_casts > 20

    def test_random_programs_report_their_types(self):
        from repro.core.types import types_equal

        for term, ty in random_programs(seed=11, count=20):
            assert types_equal(type_of(term), ty)

    def test_requested_type_is_honoured(self):
        from repro.core.types import BOOL, FunType, INT

        generator = TermGenerator(random.Random(12))
        ty = FunType(INT, BOOL)
        term = generator.term(ty)
        assert type_of(term) == ty

    def test_reproducibility(self):
        assert random_lambda_b_term(99) == random_lambda_b_term(99)
