"""Tests for :mod:`repro.api` — the single run-configuration surface.

Every entrypoint (CLI run, batch, serve, experiment driver) resolves its
knobs through :func:`repro.api.resolve_config` and executes through
:func:`repro.api.run`; the old keyword entrypoints survive as deprecating
shims.  These tests pin the resolution rules, the one-site ``mediator=``
deprecation, and the result metadata (``RunResult.config`` /
``cache_status``).
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    DEFAULT_FUEL,
    RunConfig,
    RunResult,
    reconcile_semantics,
    resolve_config,
    run,
)
from repro.core.errors import UsageError

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
BLAME = "(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n"


class TestResolveConfig:
    def test_defaults(self):
        cfg = resolve_config()
        assert cfg.engine == "machine"
        assert cfg.semantics == "coercion"
        assert cfg.calculus == "S"
        assert cfg.fuel == DEFAULT_FUEL["machine"]

    def test_overrides_on_existing_config(self):
        base = RunConfig(engine="vm")
        cfg = resolve_config(base, semantics="threesome")
        assert cfg.engine == "vm"
        assert cfg.semantics == "threesome"
        assert cfg.ir == "stack"
        assert cfg.fuel == DEFAULT_FUEL["vm"]

    def test_rvm_gets_register_ir(self):
        cfg = resolve_config(engine="rvm")
        assert cfg.ir == "register"

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_config(engine="jit")

    def test_unknown_semantics(self):
        with pytest.raises(UsageError, match="unknown"):
            resolve_config(semantics="laissez-faire")

    def test_unknown_opt_level(self):
        with pytest.raises(UsageError):
            resolve_config(engine="vm", opt_level=9)

    def test_vm_requires_calculus_s(self):
        with pytest.raises(UsageError):
            resolve_config(engine="vm", calculus="B")

    def test_calculus_is_uppercased(self):
        assert resolve_config(engine="machine", calculus="b").calculus == "B"

    def test_subst_requires_coercion(self):
        with pytest.raises(UsageError):
            resolve_config(engine="subst", semantics="threesome")

    def test_cache_narrowed_to_vm_engines(self):
        assert resolve_config(engine="machine", cache=True).cache is False
        assert resolve_config(engine="vm", cache=True).cache is True

    def test_frozen(self):
        with pytest.raises(Exception):
            resolve_config().engine = "vm"  # type: ignore[misc]

    def test_describe_is_json_ready(self):
        import json

        json.dumps(resolve_config(engine="vm").describe())


class TestMediatorShim:
    def test_mediator_alone_warns_and_wins(self):
        with pytest.warns(DeprecationWarning, match="mediator= is deprecated"):
            assert reconcile_semantics(None, "threesome") == "threesome"

    def test_semantics_alone_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reconcile_semantics("transient", None) == "transient"

    def test_neither_returns_none(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert reconcile_semantics(None, None) is None

    def test_conflict_prefers_semantics(self):
        with pytest.warns(DeprecationWarning):
            assert reconcile_semantics("coercion", "threesome") == "coercion"

    def test_conflict_mode_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(UsageError, match="contradicts"):
                reconcile_semantics("coercion", "threesome", conflict="error")

    def test_run_source_shim_warns_once(self):
        from repro.surface.interp import run_source

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_source(SQUARE, engine="vm", mediator="threesome")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert result.is_value and result.value == 36
        assert result.semantics == "threesome"

    def test_run_source_without_mediator_is_silent(self):
        from repro.surface.interp import run_source

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = run_source(SQUARE, engine="vm", semantics="coercion")
        assert result.is_value and result.value == 36


class TestRun:
    def test_source_through_default_engine(self):
        result = run(SQUARE)
        assert isinstance(result, RunResult)
        assert result.is_value and result.value == 36

    def test_result_carries_resolved_config(self):
        result = run(SQUARE, engine="vm", semantics="threesome")
        cfg = result.config
        assert cfg is not None
        assert cfg.engine == "vm"
        assert cfg.semantics == "threesome"
        assert cfg.ir == "stack"
        assert cfg.fuel == DEFAULT_FUEL["vm"]

    def test_blame_path(self):
        result = run(BLAME, engine="vm")
        assert result.is_blame
        assert "@" in str(result.blame_label)

    def test_explicit_config_object(self):
        result = run(SQUARE, RunConfig(engine="rvm"))
        assert result.is_value and result.value == 36
        assert result.config.engine == "rvm"

    def test_cache_status_roundtrip(self, tmp_path):
        cfg = RunConfig(engine="vm", cache=True, cache_dir=str(tmp_path))
        cold = run(SQUARE, cfg)
        warm = run(SQUARE, cfg)
        assert cold.cache_status == "miss"
        assert warm.cache_status == "hit"

    def test_cache_off_status(self):
        assert run(SQUARE, engine="vm", cache=False).cache_status is None

    def test_rejects_non_program_input(self):
        with pytest.raises(TypeError):
            run(42)  # type: ignore[arg-type]

    def test_all_engines_agree(self):
        values = {
            engine: run(SQUARE, engine=engine, cache=False).value
            for engine in ("vm", "rvm", "machine", "subst")
        }
        assert set(values.values()) == {36}


class TestServeValidationSharesPath:
    def test_bad_semantics_rejected(self):
        from repro.serve.protocol import normalize_run_request

        defaults = {
            "semantics": "coercion", "opt_level": 2, "engine": "vm",
            "fuel": None, "deadline_s": None, "cache_dir": None,
            "use_cache": False,
        }
        with pytest.raises(ValueError, match="unknown"):
            normalize_run_request(
                {"source": SQUARE, "semantics": "laissez-faire"}, defaults
            )

    def test_legacy_mediator_key_still_accepted(self):
        from repro.serve.protocol import normalize_run_request

        defaults = {
            "semantics": "coercion", "opt_level": 2, "engine": "vm",
            "fuel": None, "deadline_s": None, "cache_dir": None,
            "use_cache": False,
        }
        job = normalize_run_request(
            {"source": SQUARE, "mediator": "threesome"}, defaults
        )
        assert job["semantics"] == "threesome"
