"""Tests for the bytecode compiler and the coercion-aware VM (repro.compiler).

The CEK machine is the VM's oracle: most tests here compare the two engines
observationally, on the shipped ``.grad`` programs, the hand-written
workloads, and hypothesis-generated λB programs.  The rest pin down the
subsystem's own invariants: disassembler round trips, constant-pool
interning stability, the tail-call space discipline, and uniform timeout
reporting across all three engines.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.compiler import (
    CodeObject,
    VMClosure,
    all_code_objects,
    compile_term,
    disassemble,
    instruction_streams,
    lower_program,
    parse_disassembly,
    run_code,
    run_on_vm,
)
from repro.compiler.bytecode import (
    COERCE,
    COMPOSE,
    OPCODE_NAMES,
    TAILCALL,
)
from repro.core.errors import CompileError
from repro.core.labels import label
from repro.core.terms import App, Cast, Coerce, Lam, Let, Op, Var, const_int
from repro.core.types import DYN, INT, BOOL, FunType
from repro.gen.programs import (
    WORKLOADS,
    deep_cast_chain,
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    let_chain_boundary,
    pair_boundary_swap,
    safe_boundary_program,
    tail_countdown_boundary,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_s.coercions import is_interned_space
from repro.machine import run_on_machine
from repro.properties.bisimulation import check_vm_oracle
from repro.surface.interp import run_source
from repro.translate import b_to_s

from .strategies import lambda_b_programs

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "programs"

P = label("p")
Q = label("q")


def _vm_and_machine(term_b):
    return run_on_vm(term_b), run_on_machine(term_b, "S")


# ---------------------------------------------------------------------------
# VM vs machine: values, blame, and the hand-written workloads
# ---------------------------------------------------------------------------


class TestVMAgainstMachine:
    @pytest.mark.parametrize(
        "term_b, expected",
        [
            (even_odd_boundary(40), True),
            (even_odd_boundary(41), False),
            (typed_loop_untyped_step(50), 0),
            (tail_countdown_boundary(64), True),
            (let_chain_boundary(25), 25),
            (fib_boundary(10), fib_expected(10)),
            (twice_boundary(5), 7),
            (pair_boundary_swap(), (7, True)),
            (safe_boundary_program(), 8),
            (deep_cast_chain(8), 42),
        ],
    )
    def test_workload_values(self, term_b, expected):
        vm, machine = _vm_and_machine(term_b)
        assert vm.is_value and machine.is_value
        assert vm.python_value() == expected
        assert vm.python_value() == machine.python_value()

    @pytest.mark.parametrize(
        "term_b",
        [untyped_library_bad_result(), untyped_client_bad_argument()],
    )
    def test_blame_labels_agree(self, term_b):
        vm, machine = _vm_and_machine(term_b)
        assert vm.is_blame and machine.is_blame
        assert vm.label == machine.label

    def test_check_vm_oracle_on_all_registered_workloads(self):
        sizes = {"deep_cast_chain": 6}
        for name, builder in WORKLOADS.items():
            term = builder(sizes.get(name, 12))
            report = check_vm_oracle(term)
            assert report.ok, f"{name}: {report.reason}"

    @given(lambda_b_programs())
    @settings(max_examples=60, deadline=None)
    def test_vm_agrees_with_machine_and_subst_on_generated_programs(self, program):
        term, _ = program
        report = check_vm_oracle(term)
        assert report.ok, report.reason


# ---------------------------------------------------------------------------
# The shipped example programs
# ---------------------------------------------------------------------------


class TestVMOnExamplePrograms:
    @pytest.mark.parametrize("path", sorted(EXAMPLES.glob("*.grad")), ids=lambda p: p.stem)
    def test_vm_agrees_with_machine_on_grad_files(self, path):
        source = path.read_text()
        vm = run_source(source, engine="vm")
        machine = run_source(source, engine="machine")
        assert vm.kind == machine.kind
        assert vm.value == machine.value
        assert vm.blame_label == machine.blame_label

    def test_engine_vm_is_exposed_by_run_source(self):
        result = run_source("(: (: 21 ?) int)", engine="vm")
        assert result.is_value and result.value == 21
        assert result.engine == "vm"
        assert result.space_stats is not None


# ---------------------------------------------------------------------------
# The space discipline: pending coercions composed, never stacked
# ---------------------------------------------------------------------------


class TestSpaceDiscipline:
    @pytest.mark.parametrize("builder", [tail_countdown_boundary, even_odd_boundary,
                                         typed_loop_untyped_step])
    def test_tail_loops_run_in_constant_pending_space(self, builder):
        small = run_on_vm(builder(20)).stats
        large = run_on_vm(builder(400)).stats
        # The pending-coercion footprint must not grow with the iteration count.
        assert large["max_pending_mediators"] == small["max_pending_mediators"]
        assert large["max_pending_size"] == small["max_pending_size"]
        assert large["max_pending_mediators"] <= 2

    def test_tail_calls_reuse_frames(self):
        # At -O0 the boundary coercions survive to run time, so the loop
        # must *merge* them into the single pending slot every iteration.
        stats = run_on_vm(tail_countdown_boundary(300), opt_level=0).stats
        # One saved frame at most: the whole countdown runs in the entry frame.
        assert stats["max_kont_depth"] <= 1
        assert stats["merges"] >= 299
        # At -O2 the same chain pre-composes statically (to the identity,
        # here), but frame reuse is unchanged.
        stats_o2 = run_on_vm(tail_countdown_boundary(300)).stats
        assert stats_o2["max_kont_depth"] <= 1

    def test_compose_and_tailcall_are_emitted_for_tail_coercions(self):
        # -O0 keeps the lowered stream: the tail coercion is a COMPOSE.  At
        # -O2 this particular chain pre-composes away and the tail call is
        # fused into LOAD_TAILCALL — asserted by tests/test_opt.py.
        code = compile_term(tail_countdown_boundary(5), opt_level=0)
        opcodes = {op for obj in all_code_objects(code) for op, _ in obj.instructions}
        assert COMPOSE in opcodes
        assert TAILCALL in opcodes

    def test_non_tail_coercions_are_immediate(self):
        code = compile_term(let_chain_boundary(3))
        opcodes = [op for obj in all_code_objects(code) for op, _ in obj.instructions]
        assert COERCE in opcodes


# ---------------------------------------------------------------------------
# Disassembler round trips and pool stability
# ---------------------------------------------------------------------------


class TestDisassembler:
    @pytest.mark.parametrize(
        "term_b",
        [
            even_odd_boundary(3),
            fib_boundary(3),
            pair_boundary_swap(),
            untyped_library_bad_result(),
            let_chain_boundary(4),
        ],
    )
    def test_round_trip(self, term_b):
        code = compile_term(term_b)
        assert parse_disassembly(disassemble(code)) == instruction_streams(code)

    @pytest.mark.parametrize("path", sorted(EXAMPLES.glob("*.grad")), ids=lambda p: p.stem)
    def test_round_trip_on_examples(self, path):
        from repro.surface.interp import compile_source

        term, _ = compile_source(path.read_text())
        code = compile_term(term)
        assert parse_disassembly(disassemble(code)) == instruction_streams(code)

    def test_disassembly_shows_pools_and_opcode_names(self):
        text = disassemble(compile_term(even_odd_boundary(3)))
        assert "pool coercions:" in text
        assert "pool consts:" in text
        assert "COMPOSE" in text and "TAILCALL" in text

    def test_parse_rejects_garbage(self):
        with pytest.raises(CompileError):
            parse_disassembly("code 0 <main>\n   0  NOT_AN_OPCODE 3\n")


class TestConstantPool:
    def test_coercion_pool_entries_are_interned(self):
        code = compile_term(even_odd_boundary(3))
        assert code.pool.coercions
        for coercion in code.pool.coercions:
            assert is_interned_space(coercion)

    def test_interning_is_stable_across_compilations(self):
        first = compile_term(even_odd_boundary(3))
        second = compile_term(even_odd_boundary(3))
        assert len(first.pool.coercions) == len(second.pool.coercions)
        for a, b in zip(first.pool.coercions, second.pool.coercions):
            assert a is b  # pointer-identical: the pools share canonical nodes

    def test_duplicate_constants_are_pooled_once(self):
        term = Op("+", (const_int(7), const_int(7)))
        code = lower_program(b_to_s(term))
        assert len([c for c in code.pool.consts if getattr(c, "value", None) == 7]) == 1


# ---------------------------------------------------------------------------
# Lowering: rejections and structure
# ---------------------------------------------------------------------------


class TestLowering:
    def test_rejects_lambda_b_casts(self):
        with pytest.raises(CompileError):
            lower_program(Cast(const_int(1), INT, DYN, P))

    def test_rejects_lambda_c_coercions(self):
        from repro.lambda_c.coercions import Identity

        with pytest.raises(CompileError):
            lower_program(Coerce(const_int(1), Identity(INT)))

    def test_rejects_open_terms(self):
        with pytest.raises(CompileError):
            lower_program(Var("ghost"))

    def test_identity_coercions_are_dropped(self):
        term = b_to_s(Cast(const_int(1), INT, INT, P))
        code = lower_program(term)
        opcodes = {op for op, _ in code.instructions}
        assert COERCE not in opcodes and COMPOSE not in opcodes

    def test_shadowing_resolves_to_innermost_binding(self):
        term = Let("x", const_int(1), Let("x", const_int(2), Var("x")))
        outcome = run_code(lower_program(b_to_s(term)))
        assert outcome.python_value() == 2

    def test_let_scope_does_not_leak_into_siblings(self):
        term = Let(
            "x",
            const_int(10),
            Op("+", (Let("x", const_int(1), Var("x")), Var("x"))),
        )
        outcome = run_code(lower_program(b_to_s(term)))
        assert outcome.python_value() == 11

    def test_closures_capture_by_value(self):
        # let y = 5 in (λx:int. x + y) 2  — y captured at MAKE_CLOSURE time
        term = Let(
            "y",
            const_int(5),
            App(Lam("x", INT, Op("+", (Var("x"), Var("y")))), const_int(2)),
        )
        outcome = run_code(lower_program(b_to_s(term)))
        assert outcome.python_value() == 7

    def test_every_emitted_opcode_is_named(self):
        code = compile_term(even_odd_boundary(3))
        for obj in all_code_objects(code):
            for op, _ in obj.instructions:
                assert op in OPCODE_NAMES


# ---------------------------------------------------------------------------
# Uniform timeout outcomes across the three engines
# ---------------------------------------------------------------------------


class TestUniformTimeouts:
    DIVERGING = "((lambda (f) (f f)) (lambda (f) (f f)))"

    @pytest.mark.parametrize("engine", ["vm", "machine", "subst"])
    def test_timeout_outcome_shape_is_engine_independent(self, engine):
        result = run_source(self.DIVERGING, engine=engine, fuel=2_000)
        assert result.kind == "timeout"
        assert result.is_timeout
        assert result.value is None and result.blame_label is None
        assert result.steps == 2_000  # the fuel spent, in the engine's unit
        assert result.engine == engine

    def test_vm_timeout_reports_stats(self):
        result = run_source(self.DIVERGING, engine="vm", fuel=500)
        assert result.is_timeout and result.space_stats is not None
        assert result.space_stats["steps"] == 500


# ---------------------------------------------------------------------------
# VM odds and ends
# ---------------------------------------------------------------------------


class TestVMDetails:
    def test_vm_rejects_non_s_calculus_through_interp(self):
        with pytest.raises(ValueError):
            run_source("(: 1 ?)", engine="vm", calculus="B")

    def test_vm_closure_projects_as_function(self):
        outcome = run_on_vm(Lam("x", INT, Var("x")))
        assert isinstance(outcome.value, VMClosure)
        assert outcome.python_value() == "<function>"

    def test_fix_unrolls_without_frame_growth(self):
        outcome = run_on_vm(even_odd_boundary(100))
        assert outcome.is_value
        assert outcome.stats["max_kont_depth"] <= 3

    def test_higher_order_proxies_compose_result_coercions(self):
        # twice applies a proxied function twice: the dom/cod coercions of the
        # proxy go through the pending-slot discipline, not stacked frames.
        outcome = run_on_vm(twice_boundary(3))
        assert outcome.is_value and outcome.python_value() == 5
        assert outcome.stats["max_pending_mediators"] <= 3

    def test_compile_term_returns_code_object(self):
        code = compile_term(const_int(1))
        assert isinstance(code, CodeObject)
        assert code.pool is not None
