"""Tests for λC coercions (Figure 3): typing, height, safety, construction."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.errors import CoercionTypeError
from repro.core.labels import label
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType, ProdType, UnknownType
from repro.lambda_c.coercions import (
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
    check_coercion,
    coercion_safe_for,
    coercion_source,
    coercion_target,
    height,
    labels_of,
    sequence,
    size,
    subcoercions,
    well_formed,
)

from .strategies import lambda_c_coercions

P = label("p")
Q = label("q")


class TestConstruction:
    def test_injection_requires_a_ground_type(self):
        Inject(INT)
        Inject(GROUND_FUN)
        with pytest.raises(CoercionTypeError):
            Inject(FunType(INT, INT))

    def test_projection_requires_a_ground_type(self):
        Project(INT, P)
        with pytest.raises(CoercionTypeError):
            Project(FunType(INT, INT), P)

    def test_fail_requires_distinct_ground_types(self):
        Fail(INT, P, BOOL)
        with pytest.raises(CoercionTypeError):
            Fail(INT, P, INT)
        with pytest.raises(CoercionTypeError):
            Fail(FunType(INT, INT), P, BOOL)

    def test_fail_equality_ignores_annotations(self):
        assert Fail(INT, P, BOOL, source=INT, target=BOOL) == Fail(INT, P, BOOL)
        assert Fail(INT, P, BOOL) != Fail(INT, Q, BOOL)

    def test_sequence_helper(self):
        chained = sequence(Inject(INT), Project(INT, P))
        assert chained == Sequence(Inject(INT), Project(INT, P))
        assert sequence(Inject(INT)) == Inject(INT)


class TestTyping:
    def test_identity(self):
        assert coercion_source(Identity(INT)) == INT
        assert coercion_target(Identity(INT)) == INT
        assert check_coercion(Identity(INT), INT) == INT

    def test_injection_and_projection(self):
        assert check_coercion(Inject(INT), INT) == DYN
        assert check_coercion(Project(BOOL, P), DYN) == BOOL
        assert coercion_source(Project(BOOL, P)) == DYN

    def test_injection_rejects_wrong_source(self):
        with pytest.raises(CoercionTypeError):
            check_coercion(Inject(INT), BOOL)

    def test_projection_rejects_non_dyn_source(self):
        with pytest.raises(CoercionTypeError):
            check_coercion(Project(INT, P), INT)

    def test_function_coercion_contravariance(self):
        # c : ? ⇒ int (projection), d : int ⇒ ? (injection)
        c = Project(INT, P)
        d = Inject(INT)
        fun = FunCoercion(c, d)
        # c → d : int→int ⇒ ?→?
        assert check_coercion(fun, FunType(INT, INT)) == GROUND_FUN
        assert coercion_source(fun) == FunType(INT, INT)
        assert coercion_target(fun) == GROUND_FUN

    def test_function_coercion_rejects_mismatch(self):
        fun = FunCoercion(Project(INT, P), Inject(INT))
        with pytest.raises(CoercionTypeError):
            check_coercion(fun, FunType(BOOL, INT))

    def test_product_coercion_covariance(self):
        prod = ProdCoercion(Inject(INT), Inject(BOOL))
        assert check_coercion(prod, ProdType(INT, BOOL)) == ProdType(DYN, DYN)

    def test_sequence_typing(self):
        seq = Sequence(Inject(INT), Project(INT, P))
        assert check_coercion(seq, INT) == INT
        bad = Sequence(Inject(INT), Project(INT, P))
        with pytest.raises(CoercionTypeError):
            check_coercion(bad, BOOL)

    def test_fail_typing(self):
        fail = Fail(INT, P, BOOL, source=INT, target=BOOL)
        assert check_coercion(fail, INT) == BOOL
        with pytest.raises(CoercionTypeError):
            check_coercion(fail, DYN)
        unannotated = Fail(INT, P, BOOL)
        assert isinstance(check_coercion(unannotated, INT), UnknownType)

    def test_well_formed(self):
        assert well_formed(Sequence(Inject(INT), Project(INT, P)))
        # A mismatched projection is still *statically* fine (it fails at run time)...
        assert well_formed(Sequence(Inject(INT), Project(BOOL, P)))
        # ...but a sequence whose middle types disagree is not.
        assert not well_formed(Sequence(Inject(INT), Inject(BOOL)))

    @given(lambda_c_coercions())
    def test_generated_coercions_are_well_typed(self, generated):
        coercion, source, target = generated
        assert check_coercion(coercion, source) == target


class TestHeightAndSize:
    def test_primitive_heights_are_one(self):
        for c in (Identity(INT), Inject(INT), Project(INT, P), Fail(INT, P, BOOL)):
            assert height(c) == 1

    def test_function_coercion_increases_height(self):
        fun = FunCoercion(Project(INT, P), Inject(INT))
        assert height(fun) == 2
        assert height(FunCoercion(fun, fun)) == 3

    def test_composition_does_not_increase_height(self):
        fun = FunCoercion(Project(INT, P), Inject(INT))
        assert height(Sequence(fun, fun)) == height(fun)

    def test_size_counts_constructors(self):
        fun = FunCoercion(Project(INT, P), Inject(INT))
        assert size(fun) == 3
        assert size(Sequence(fun, Identity(GROUND_FUN))) == 5

    @given(lambda_c_coercions())
    def test_height_is_at_most_size(self, generated):
        coercion, _, _ = generated
        assert height(coercion) <= size(coercion)


class TestSafety:
    def test_identity_and_injection_are_safe_for_everything(self):
        assert coercion_safe_for(Identity(INT), P)
        assert coercion_safe_for(Inject(INT), P)

    def test_projection_mentions_its_label(self):
        assert not coercion_safe_for(Project(INT, P), P)
        assert coercion_safe_for(Project(INT, P), Q)
        assert coercion_safe_for(Project(INT, P), P.complement())

    def test_fail_mentions_its_label(self):
        assert not coercion_safe_for(Fail(INT, P, BOOL), P)
        assert coercion_safe_for(Fail(INT, P, BOOL), Q)

    def test_safety_is_structural(self):
        c = Sequence(FunCoercion(Project(INT, P), Inject(INT)), Identity(GROUND_FUN))
        assert not coercion_safe_for(c, P)
        assert coercion_safe_for(c, Q)

    def test_labels_of(self):
        c = Sequence(Project(INT, P), Sequence(Inject(INT), Project(BOOL, Q)))
        assert labels_of(c) == {P, Q}

    def test_subcoercions_enumerates_everything(self):
        c = Sequence(FunCoercion(Project(INT, P), Inject(INT)), Identity(GROUND_FUN))
        nodes = list(subcoercions(c))
        assert len(nodes) == 5


class TestPrettyPrinting:
    def test_rendering(self):
        assert "int!" in str(Inject(INT))
        assert "?p" in str(Project(INT, P))
        assert "->" in str(FunCoercion(Identity(INT), Identity(INT)))
        assert ";" in str(Sequence(Identity(INT), Identity(INT)))
        assert "Fail" in str(Fail(INT, P, BOOL))
