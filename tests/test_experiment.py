"""Tests for :mod:`repro.experiment` — lattice, fault injection, driver.

The load-bearing properties:

* lattice enumeration/sampling and fault sampling are **deterministic**
  for a seed (the experiment must be replayable);
* every rendered configuration of a faulted program is **statically
  well-typed** (the planted mistake is a runtime fault, routed through
  ``?``);
* blame-following **terminates** with a trail no longer than the number
  of initially-untyped bindings (each step types one binding — checked
  with Hypothesis across generated programs, faults, and semantics);
* the driver localizes planted faults under the natural semantics and
  records **zero blame** under erasure.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import resolve_config
from repro.experiment import (
    ExperimentConfig,
    ProgramLattice,
    apply_fault,
    enumerate_configurations,
    enumerate_faults,
    follow_trail,
    render_configuration,
    run_experiment,
    sample_faults,
    strategy_for,
)
from repro.experiment.driver import OUTCOMES, STRATEGY_BLAME, STRATEGY_NULL, InlineRunner
from repro.experiment.lattice import MAIN_OWNER
from repro.gen import generate_program
from repro.surface.interp import compile_source

PIPELINE = """\
(define (inc2 [x : int]) : int (+ x 2))
(define (flag [n : int]) : bool (< n 10))
(define (use [b : bool]) : int (if b (inc2 1) 0))
(define (top [n : int]) : int (use (flag n)))
(top 3)
"""

ALL_SEMANTICS = ("coercion", "threesome", "transient", "erasure")


def _runner(semantics: str) -> InlineRunner:
    return InlineRunner(resolve_config(
        engine="vm", semantics=semantics, fuel=200_000, cache=False,
    ))


class TestLattice:
    def test_structure(self):
        lattice = ProgramLattice.from_source(PIPELINE, name="pipeline")
        assert lattice.typeable_names == ("inc2", "flag", "use", "top")
        refs = lattice.reference_map()
        assert refs["use"] == ("inc2",)
        assert refs["top"] == ("flag", "use")
        assert refs[MAIN_OWNER] == ("top",)

    def test_render_roundtrips_and_owns_lines(self):
        lattice = ProgramLattice.from_source(PIPELINE)
        source, owner = render_configuration(lattice, frozenset({"use"}))
        reparsed = ProgramLattice.from_program(
            __import__("repro.surface.parser", fromlist=["parse_program"])
            .parse_program(source)
        )
        assert [b.name for b in reparsed.bindings] == ["inc2", "flag", "use", "top"]
        assert owner == {1: "inc2", 2: "flag", 3: "use", 4: "top", 5: MAIN_OWNER}
        # The untyped binding keeps a ?→? annotation (the letrec path).
        assert "(define use : (-> ? ?) (lambda (b)" in source

    def test_full_enumeration_below_cutoff(self):
        lattice = ProgramLattice.from_source(PIPELINE)
        configs = enumerate_configurations(lattice, max_configs=16)
        assert len(configs) == 16
        assert len(set(configs)) == 16
        assert frozenset() in configs
        assert frozenset({"inc2", "flag", "use", "top"}) in configs

    def test_sampling_above_cutoff_is_seeded(self):
        source = generate_program(3, bindings=8)
        lattice = ProgramLattice.from_source(source)
        a = enumerate_configurations(lattice, max_configs=24, seed=7)
        b = enumerate_configurations(lattice, max_configs=24, seed=7)
        c = enumerate_configurations(lattice, max_configs=24, seed=8)
        assert a == b
        assert a != c
        assert len(a) == 24
        # Stratified: both lattice extremes stay represented.
        sizes = {len(cfg) for cfg in a}
        assert 0 in sizes and 8 in sizes

    def test_every_configuration_of_clean_program_runs(self):
        lattice = ProgramLattice.from_source(PIPELINE)
        runner = _runner("coercion")
        for cfg in enumerate_configurations(lattice, max_configs=16):
            source, _ = render_configuration(lattice, cfg)
            assert runner(source)["kind"] == "value", (sorted(cfg), source)


class TestInjection:
    def test_enumerate_covers_all_kinds(self):
        lattice = ProgramLattice.from_source(PIPELINE)
        kinds = {f.kind for f in enumerate_faults(lattice)}
        assert kinds == {"wrong-return", "wrong-argument", "wrong-annotation"}

    def test_sampling_is_seeded_and_kind_balanced(self):
        lattice = ProgramLattice.from_source(PIPELINE)
        a = sample_faults(lattice, 6, seed=1)
        b = sample_faults(lattice, 6, seed=1)
        assert [f.describe() for f in a] == [f.describe() for f in b]
        assert len({f.kind for f in a}) == 3

    @pytest.mark.parametrize("index", range(4))
    def test_faulted_configurations_stay_statically_typed(self, index):
        lattice = ProgramLattice.from_source(PIPELINE)
        fault = sample_faults(lattice, 4, seed=0)[index]
        faulty = apply_fault(lattice, fault)
        for cfg in enumerate_configurations(faulty, max_configs=16):
            source, _ = render_configuration(faulty, cfg)
            compile_source(source)  # raises on any static error

    def test_fault_manifests_somewhere(self):
        lattice = ProgramLattice.from_source(PIPELINE)
        runner = _runner("coercion")
        for fault in sample_faults(lattice, 4, seed=0):
            faulty = apply_fault(lattice, fault)
            kinds = set()
            for cfg in enumerate_configurations(faulty, max_configs=16):
                source, _ = render_configuration(faulty, cfg)
                kinds.add(runner(source)["kind"])
            assert "blame" in kinds, fault.describe()


class TestStrategies:
    def test_blame_semantics_follow_blame(self):
        assert strategy_for("coercion") == STRATEGY_BLAME
        assert strategy_for("threesome") == STRATEGY_BLAME
        assert strategy_for("transient") == STRATEGY_BLAME

    def test_erasure_is_the_null_strategy(self):
        assert strategy_for("erasure") == STRATEGY_NULL


@settings(deadline=None, max_examples=25)
@given(
    program_seed=st.integers(min_value=0, max_value=10_000),
    fault_choice=st.integers(min_value=0, max_value=100),
    start_choice=st.integers(min_value=0, max_value=100),
    semantics=st.sampled_from(ALL_SEMANTICS),
)
def test_trail_terminates_within_untyped_budget(
    program_seed, fault_choice, start_choice, semantics
):
    """Blame-following types one binding per step, so every trail runs at
    most ``len(start_untyped) + 1`` configurations — for any program, any
    fault, any starting configuration, any semantics."""
    source = generate_program(program_seed, bindings=4)
    lattice = ProgramLattice.from_source(source, name=f"gen-{program_seed}")
    faults = enumerate_faults(lattice)
    if not faults:
        return
    fault = faults[fault_choice % len(faults)]
    configs = enumerate_configurations(lattice, max_configs=16, seed=0)
    start = configs[start_choice % len(configs)]
    trail = follow_trail(
        lattice, fault, start, semantics, _runner(semantics),
        rng=random.Random(0),
    )
    assert trail.outcome in OUTCOMES
    assert trail.length <= len(start)
    assert trail.configurations_run == trail.length + 1
    if semantics == "erasure":
        assert trail.blame_records == 0


class TestDriver:
    def test_inline_experiment_localizes_and_erasure_never_blames(self):
        config = ExperimentConfig(
            semantics=ALL_SEMANTICS, workers=0, max_configs=16,
            starts_per_fault=2, faults_per_program=3, seed=0,
        )
        trails, report = run_experiment([("pipeline", PIPELINE)], config)
        assert report["trails"] == len(trails) > 0
        coercion = report["semantics"]["coercion"]
        assert coercion["blame_trails"] > 0
        assert coercion["localization_rate"] >= 0.9
        erasure = report["semantics"]["erasure"]
        assert erasure["blame_records"] == 0
        assert erasure["strategy"] == STRATEGY_NULL

    def test_experiment_is_deterministic(self):
        config = ExperimentConfig(
            semantics=("coercion",), workers=0, max_configs=8,
            starts_per_fault=2, faults_per_program=2, seed=3,
        )
        first, _ = run_experiment([("pipeline", PIPELINE)], config)
        second, _ = run_experiment([("pipeline", PIPELINE)], config)
        assert [t.describe() for t in first] == [t.describe() for t in second]

    def test_unknown_semantics_rejected(self):
        from repro.core.errors import UsageError

        with pytest.raises(UsageError, match="unknown semantics"):
            ExperimentConfig(semantics=("laissez-faire",))


class TestCli:
    def test_experiment_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main([
            "experiment", "--generate", "1", "--bindings", "4",
            "--workers", "0", "--max-configs", "8", "--starts", "2",
            "--faults-per-program", "2", "--semantics", "coercion,erasure",
            "--report", str(report_path),
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        *trail_lines, aggregate_line = lines
        assert trail_lines
        for line in trail_lines:
            record = json.loads(line)
            assert record["outcome"] in OUTCOMES
        aggregate = json.loads(aggregate_line)["aggregate"]
        assert aggregate == json.loads(report_path.read_text())
        assert aggregate["semantics"]["erasure"]["blame_records"] == 0

    def test_needs_programs(self, capsys):
        from repro.cli import main

        assert main(["experiment"]) == 2
