"""The interning (hash-consing) layer and the memoised hot paths built on it.

Three families of properties:

* interned construction is *idempotent* and canonical — interning twice is
  the same object, and pointer equality on canonical representatives
  coincides with structural equality;
* the memoised predicates (``compatible``, ``types_equal``, ``ground_of``)
  and the memoised composition ``compose_memo`` agree with their unmemoized
  reference implementations on generated inputs;
* the CEK machine engine (which runs entirely on interned mediators) agrees
  with the substitution-based reference oracle on the workload programs and
  on randomly generated λB programs.
"""

from __future__ import annotations

from copy import deepcopy

import pytest
from hypothesis import given

from repro.core.intern import intern_stats, intern_type, is_interned_type
from repro.core.types import (
    BOOL,
    DYN,
    GROUND_FUN,
    GROUND_PROD,
    INT,
    UNKNOWN,
    DynType,
    FunType,
    ProdType,
    compatible,
    compatible_unmemoized,
    ground_of,
    ground_of_unmemoized,
    types_equal,
    types_equal_unmemoized,
)
from repro.gen.programs import (
    deep_cast_chain,
    even_odd_boundary,
    fib_boundary,
    pair_boundary_swap,
    safe_boundary_program,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_c.coercions import intern_coercion, is_interned_coercion
from repro.lambda_s.coercions import (
    compose,
    compose_memo,
    compose_memo_stats,
    intern_space,
    is_interned_space,
)
from repro.properties.bisimulation import check_engine_oracle, check_engine_oracle_all

from .strategies import (
    composable_space_coercions,
    lambda_b_programs,
    lambda_c_coercions,
    space_coercions,
    types,
)


# ---------------------------------------------------------------------------
# Interned construction: idempotent, canonical, equality-preserving
# ---------------------------------------------------------------------------


class TestTypeInterning:
    @given(types())
    def test_idempotent(self, ty):
        canon = intern_type(ty)
        assert intern_type(canon) is canon
        assert is_interned_type(canon)

    @given(types())
    def test_interning_preserves_structural_equality(self, ty):
        assert intern_type(ty) == ty

    @given(types(), types())
    def test_pointer_equality_iff_structural_equality(self, a, b):
        assert (intern_type(a) is intern_type(b)) == (a == b)

    @given(types())
    def test_deep_copies_intern_to_the_same_node(self, ty):
        assert intern_type(ty) is intern_type(deepcopy(ty))

    def test_singletons_are_canonical(self):
        assert intern_type(DynType()) is DYN
        assert intern_type(FunType(DYN, DYN)) is GROUND_FUN
        assert intern_type(ProdType(DYN, DYN)) is GROUND_PROD

    def test_children_of_interned_types_are_interned(self):
        canon = intern_type(FunType(ProdType(INT, BOOL), DYN))
        assert is_interned_type(canon.dom)
        assert is_interned_type(canon.dom.left)
        assert canon.cod is DYN

    def test_stats_exposed_for_all_tables(self):
        stats = intern_stats()
        assert {"types", "coercions_c", "coercions_s"} <= set(stats)
        for table in stats.values():
            assert {"entries", "hits", "misses"} <= set(table)


class TestCoercionInterning:
    @given(lambda_c_coercions())
    def test_lambda_c_idempotent_and_equal(self, triple):
        coercion, _, _ = triple
        canon = intern_coercion(coercion)
        assert intern_coercion(canon) is canon
        assert is_interned_coercion(canon)
        assert canon == coercion

    @given(lambda_c_coercions())
    def test_lambda_c_deep_copies_share_a_node(self, triple):
        coercion, _, _ = triple
        assert intern_coercion(coercion) is intern_coercion(deepcopy(coercion))

    @given(space_coercions())
    def test_lambda_s_idempotent_and_equal(self, triple):
        coercion, _, _ = triple
        canon = intern_space(coercion)
        assert intern_space(canon) is canon
        assert is_interned_space(canon)
        assert canon == coercion

    @given(space_coercions())
    def test_lambda_s_deep_copies_share_a_node(self, triple):
        coercion, _, _ = triple
        assert intern_space(coercion) is intern_space(deepcopy(coercion))


# ---------------------------------------------------------------------------
# Memoised operations agree with the reference implementations
# ---------------------------------------------------------------------------


class TestMemoisedPredicates:
    @given(types(), types())
    def test_compatible_agrees(self, a, b):
        assert compatible(a, b) == compatible_unmemoized(a, b)

    @given(types(), types())
    def test_types_equal_agrees(self, a, b):
        assert types_equal(a, b) == types_equal_unmemoized(a, b)

    @given(types())
    def test_types_equal_wildcard_and_reflexivity(self, ty):
        assert types_equal(ty, ty)
        assert types_equal(ty, UNKNOWN) and types_equal(UNKNOWN, ty)

    @given(types())
    def test_ground_of_agrees(self, ty):
        if isinstance(ty, DynType):
            with pytest.raises(ValueError):
                ground_of(ty)
            with pytest.raises(ValueError):
                ground_of_unmemoized(ty)
        else:
            assert ground_of(ty) == ground_of_unmemoized(ty)


class TestMemoisedComposition:
    @given(composable_space_coercions())
    def test_compose_memo_agrees_with_compose(self, pair):
        s, t, *_ = pair
        assert compose_memo(s, t) == compose(s, t)

    @given(composable_space_coercions())
    def test_compose_memo_returns_the_canonical_node(self, pair):
        s, t, *_ = pair
        result = compose_memo(s, t)
        assert is_interned_space(result)
        assert compose_memo(s, t) is result  # second call is a cache hit

    def test_repeated_merges_hit_the_cache(self):
        from repro.core.labels import Label
        from repro.translate.b_to_s import cast_to_space

        s = cast_to_space(INT, Label("memo-in"), DYN)
        t = cast_to_space(DYN, Label("memo-out"), INT)
        first = compose_memo(s, t)
        before = compose_memo_stats()["hits"]
        for _ in range(5):
            assert compose_memo(s, t) is first
        assert compose_memo_stats()["hits"] >= before + 5


# ---------------------------------------------------------------------------
# The machine engine against the substitution oracle
# ---------------------------------------------------------------------------

ORACLE_WORKLOADS = {
    "even_odd_10": even_odd_boundary(10),
    "typed_loop_8": typed_loop_untyped_step(8),
    "fib_6": fib_boundary(6),
    "twice_3": twice_boundary(3),
    "deep_chain_5": deep_cast_chain(5),
    "pair_swap": pair_boundary_swap(),
    "positive_blame": untyped_library_bad_result(),
    "negative_blame": untyped_client_bad_argument(),
    "safe_boundary": safe_boundary_program(),
}


class TestEngineAgainstOracle:
    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    @pytest.mark.parametrize("name", sorted(ORACLE_WORKLOADS))
    def test_workloads(self, name, calculus):
        report = check_engine_oracle(
            ORACLE_WORKLOADS[name], calculus, strict_timeouts=True
        )
        assert report.ok, f"{name}/{calculus}: {report.reason}"

    @given(lambda_b_programs())
    def test_generated_programs(self, program):
        term, _ = program
        report = check_engine_oracle_all(term)
        assert report.ok, report.reason


class TestEngineSelection:
    def test_run_term_engines_agree(self):
        from repro.surface.interp import run_source

        source = "((lambda ([x : int]) (* x x)) (: 7 ?))"
        for calculus in ("B", "C", "S"):
            machine = run_source(source, calculus, engine="machine")
            oracle = run_source(source, calculus, engine="subst")
            assert machine.engine == "machine" and oracle.engine == "subst"
            assert machine.is_value and oracle.is_value
            assert machine.value == oracle.value == 49

    def test_unknown_engine_rejected(self):
        from repro.surface.interp import run_source

        with pytest.raises(ValueError):
            run_source("1", engine="warp-drive")

    def test_legacy_use_machine_flag_still_works(self):
        from repro.surface.interp import run_source

        assert run_source("(+ 1 2)", use_machine=False).engine == "subst"
        assert run_source("(+ 1 2)", use_machine=True).engine == "machine"

    def test_cli_engine_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.grad"
        path.write_text("(* 6 7)\n")
        assert main(["run", str(path), "--engine", "subst"]) == 0
        assert main(["run", str(path), "--engine", "machine"]) == 0
        assert main(["run", str(path), "--small-step"]) == 0
        out = capsys.readouterr().out
        assert out.count("42") == 3
