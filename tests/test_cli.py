"""Tests for the ``repro-gradual`` command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "programs"


@pytest.fixture
def square_program(tmp_path: Path) -> str:
    path = tmp_path / "square.grad"
    path.write_text("(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n")
    return str(path)


@pytest.fixture
def blame_program(tmp_path: Path) -> str:
    path = tmp_path / "blame.grad"
    path.write_text("(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n")
    return str(path)


@pytest.fixture
def ill_typed_program(tmp_path: Path) -> str:
    path = tmp_path / "bad.grad"
    path.write_text("(+ 1 #t)\n")
    return str(path)


@pytest.fixture
def unparsable_program(tmp_path: Path) -> str:
    path = tmp_path / "unparsable.grad"
    path.write_text("(define (f\n")
    return str(path)


@pytest.fixture
def diverging_program(tmp_path: Path) -> str:
    path = tmp_path / "loop.grad"
    path.write_text("(define (spin [n : int]) : int (spin n))\n(spin 0)\n")
    return str(path)


class TestRunCommand:
    def test_run_converging_program(self, square_program, capsys):
        assert main(["run", square_program]) == 0
        out = capsys.readouterr().out
        assert "36" in out

    def test_run_on_each_calculus(self, square_program, capsys):
        for calculus in ("B", "C", "S"):
            assert main(["run", square_program, "--calculus", calculus]) == 0
        assert "36" in capsys.readouterr().out

    def test_run_small_step_backend(self, square_program, capsys):
        assert main(["run", square_program, "--small-step"]) == 0
        assert "36" in capsys.readouterr().out

    def test_run_vm_engine(self, square_program, capsys):
        assert main(["run", square_program, "--engine", "vm"]) == 0
        assert "36" in capsys.readouterr().out

    def test_run_vm_engine_show_space(self, square_program, capsys):
        assert main(["run", square_program, "--engine", "vm", "--show-space"]) == 0
        assert "pending-mediators" in capsys.readouterr().out

    def test_run_vm_engine_reports_blame(self, blame_program, capsys):
        assert main(["run", blame_program, "--engine", "vm"]) == 1
        assert "blame" in capsys.readouterr().out

    def test_run_vm_engine_rejects_non_s_calculus(self, square_program, capsys):
        assert main(["run", square_program, "--engine", "vm", "--calculus", "B"]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("level", ["0", "1", "2"])
    def test_run_vm_engine_opt_levels_agree(self, square_program, level, capsys):
        assert main(["run", square_program, "--engine", "vm", "-O", level]) == 0
        assert "36" in capsys.readouterr().out

    def test_opt_level_flag_spelled_out(self, square_program, capsys):
        assert main(["run", square_program, "--engine", "vm", "--opt-level", "0"]) == 0
        assert "36" in capsys.readouterr().out

    def test_compile_opt_levels_round_trip(self, square_program, capsys):
        from repro.compiler.disasm import parse_disassembly

        streams = {}
        for level in ("0", "2"):
            assert main(["compile", square_program, "-O", level]) == 0
            streams[level] = parse_disassembly(capsys.readouterr().out)
        assert streams["0"] and streams["2"]
        # -O2 must have rewritten something on this program (it has casts).
        assert streams["0"] != streams["2"]

    def test_run_blaming_program_returns_nonzero(self, blame_program, capsys):
        assert main(["run", blame_program]) == 1
        assert "blame" in capsys.readouterr().out

    def test_show_space(self, square_program, capsys):
        assert main(["run", square_program, "--show-space"]) == 0
        out = capsys.readouterr().out
        assert "pending-mediators" in out

    def test_missing_file_is_reported(self, capsys):
        assert main(["run", "no-such-file.grad"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_static_error_is_reported(self, ill_typed_program, capsys):
        assert main(["run", ill_typed_program]) == 2
        err = capsys.readouterr().err
        assert "static type error" in err
        assert "1:1" in err  # the diagnostic carries the source location

    def test_parse_error_is_reported_with_location(self, unparsable_program, capsys):
        assert main(["run", unparsable_program]) == 2
        err = capsys.readouterr().err
        assert "parse error" in err
        assert "line" in err


class TestExitCodeScheme:
    """0 value, 1 blame, 2 static/parse error, 3 timeout — on every engine."""

    @pytest.mark.parametrize("engine", ["machine", "vm", "subst"])
    def test_value_exits_zero(self, square_program, engine, capsys):
        assert main(["run", square_program, "--engine", engine]) == 0
        assert "36" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["machine", "vm", "subst"])
    def test_blame_exits_one(self, blame_program, engine, capsys):
        assert main(["run", blame_program, "--engine", engine]) == 1
        assert "blame" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["machine", "vm", "subst"])
    def test_timeout_exits_three(self, diverging_program, engine, capsys):
        assert main(["run", diverging_program, "--engine", engine, "--fuel", "5000"]) == 3
        assert "timeout" in capsys.readouterr().out

    def test_blame_and_timeout_are_distinct(self, blame_program, diverging_program, capsys):
        # Regression: both used to exit 1, so scripts could not tell a
        # contract violation from fuel exhaustion.
        blame_code = main(["run", blame_program])
        timeout_code = main(["run", diverging_program, "--fuel", "5000"])
        capsys.readouterr()
        assert blame_code == 1
        assert timeout_code == 3

    def test_static_errors_exit_two(self, ill_typed_program, unparsable_program, capsys):
        assert main(["run", ill_typed_program]) == 2
        assert main(["run", unparsable_program]) == 2
        assert main(["run", "missing.grad"]) == 2
        capsys.readouterr()


class TestMediatorFlag:
    @pytest.mark.parametrize("engine", ["machine", "vm"])
    def test_threesome_backend_runs_values(self, square_program, engine, capsys):
        assert main(["run", square_program, "--engine", engine,
                     "--mediator", "threesome"]) == 0
        assert "36" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["machine", "vm"])
    def test_threesome_backend_reports_blame(self, blame_program, engine, capsys):
        assert main(["run", blame_program, "--engine", engine,
                     "--mediator", "threesome"]) == 1
        assert "blame" in capsys.readouterr().out

    def test_threesome_backend_preserves_the_space_story(self, capsys):
        assert main(["run", str(EXAMPLES / "tail_loop.grad"),
                     "--mediator", "threesome", "--show-space"]) == 0
        out = capsys.readouterr().out
        line = [ln for ln in out.splitlines() if "pending-mediators" in ln][0]
        assert "max=1" in line or "max=2" in line or "max=3" in line

    def test_threesome_backend_rejects_non_s_calculus(self, square_program, capsys):
        assert main(["run", square_program, "--mediator", "threesome",
                     "--calculus", "B"]) == 2
        assert "error" in capsys.readouterr().err

    def test_threesome_backend_rejects_subst_engine(self, square_program, capsys):
        assert main(["run", square_program, "--mediator", "threesome",
                     "--engine", "subst"]) == 2
        assert "error" in capsys.readouterr().err

    def test_compile_with_threesome_pool(self, square_program, capsys):
        assert main(["compile", square_program, "--mediator", "threesome"]) == 0
        out = capsys.readouterr().out
        assert "pool coercions" in out
        assert "<=" in out  # threesome entries print as <T <=P= S>

    def test_compile_threesome_disassembly_round_trips(self, square_program, capsys):
        from repro.compiler.disasm import parse_disassembly

        assert main(["compile", square_program, "--mediator", "threesome"]) == 0
        streams = parse_disassembly(capsys.readouterr().out)
        assert streams and all(streams)


class TestSemanticsFlag:
    @pytest.mark.parametrize("engine", ["machine", "vm", "rvm"])
    @pytest.mark.parametrize(
        "semantics", ["coercion", "threesome", "transient", "erasure"]
    )
    def test_every_semantics_runs_values(self, square_program, engine, semantics,
                                         capsys):
        assert main(["run", square_program, "--engine", engine,
                     "--semantics", semantics]) == 0
        assert "36" in capsys.readouterr().out

    def test_transient_blames_first_order_projections(self, tmp_path, capsys):
        # A bad base-type projection is a tag check transient does run; the
        # deep result obligation in blame_program, by contrast, is dropped
        # by design (see test_transient_drops_higher_order_obligations).
        path = tmp_path / "bad_ascription.grad"
        path.write_text("(: (: 21 ?) bool)\n")
        assert main(["run", str(path), "--semantics", "transient"]) == 1
        assert "blame" in capsys.readouterr().out

    def test_transient_drops_higher_order_obligations(self, blame_program, capsys):
        # Natural blames the int result coercion; transient keeps no proxy,
        # so the raw #t flows into + and the program computes 1 + #t = 2.
        assert main(["run", blame_program, "--semantics", "transient"]) == 0
        assert "2" in capsys.readouterr().out

    def test_erasure_never_exits_one(self, blame_program, capsys):
        # The elided boundary lets the raw #t reach +, which computes on it:
        # erasure trades the blame exit for an unchecked answer.
        assert main(["run", blame_program, "--semantics", "erasure"]) == 0
        out = capsys.readouterr().out
        assert "blame" not in out
        assert "2" in out

    def test_mediator_flag_warns_but_still_works(self, square_program, capsys):
        assert main(["run", square_program, "--mediator", "threesome"]) == 0
        captured = capsys.readouterr()
        assert "36" in captured.out
        assert "--mediator is deprecated" in captured.err
        assert "--semantics" in captured.err

    def test_semantics_flag_does_not_warn(self, square_program, capsys):
        assert main(["run", square_program, "--semantics", "threesome"]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_contradicting_flags_are_rejected(self, square_program, capsys):
        assert main(["run", square_program, "--mediator", "threesome",
                     "--semantics", "erasure"]) == 2
        assert "contradicts" in capsys.readouterr().err

    def test_mediator_choices_stay_the_natural_pair(self, square_program, capsys):
        # The deprecated alias never learned the new backends; spelling one
        # through it is an argparse error, pushing users to --semantics.
        with pytest.raises(SystemExit):
            main(["run", square_program, "--mediator", "transient"])
        capsys.readouterr()

    def test_compile_accepts_semantics(self, square_program, capsys):
        assert main(["compile", square_program, "--semantics", "transient"]) == 0
        assert "pool coercions" in capsys.readouterr().out

    def test_batch_accepts_semantics(self, square_program, capsys):
        assert main(["batch", square_program, "--semantics", "erasure"]) == 0
        capsys.readouterr()


class TestOtherCommands:
    def test_check_well_typed(self, square_program, capsys):
        assert main(["check", square_program]) == 0
        assert "well typed" in capsys.readouterr().out

    def test_check_ill_typed(self, ill_typed_program, capsys):
        # Static errors exit 2 under the uniform exit-code scheme.
        assert main(["check", ill_typed_program]) == 2
        assert "static type error" in capsys.readouterr().err

    def test_translate_to_each_calculus(self, square_program, capsys):
        assert main(["translate", square_program, "--to", "b"]) == 0
        assert "=>" in capsys.readouterr().out
        assert main(["translate", square_program, "--to", "c"]) == 0
        assert "<" in capsys.readouterr().out
        assert main(["translate", square_program, "--to", "s"]) == 0
        assert "<" in capsys.readouterr().out

    def test_compile_prints_disassembly(self, square_program, capsys):
        assert main(["compile", square_program]) == 0
        out = capsys.readouterr().out
        assert "code 0 <main>" in out
        assert "pool" in out
        assert "TAILCALL" in out or "CALL" in out

    def test_compile_disassembly_round_trips(self, square_program, capsys):
        from repro.compiler.disasm import parse_disassembly

        assert main(["compile", square_program]) == 0
        streams = parse_disassembly(capsys.readouterr().out)
        assert streams and all(streams)

    def test_space_experiment(self, capsys):
        assert main(["space", "30"]) == 0
        out = capsys.readouterr().out
        assert "calculus" in out and " B " not in ""  # table printed
        assert "31" in out  # λB pending frames for n=30

    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestImageWorkflow:
    """``compile -o IMAGE`` → ``run IMAGE`` → ``compile IMAGE``, plus the
    compile-cache flags — the CLI surface of the ``.gradb`` format."""

    def test_compile_to_image_then_run(self, square_program, tmp_path, capsys):
        image = str(tmp_path / "square.gradb")
        assert main(["compile", square_program, "-o", image]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["run", image]) == 0
        assert "36 : int" in capsys.readouterr().out

    def test_run_image_reports_blame_and_space(self, blame_program, tmp_path, capsys):
        image = str(tmp_path / "blame.gradb")
        assert main(["compile", blame_program, "-o", image]) == 0
        capsys.readouterr()
        assert main(["run", image, "--show-space"]) == 1
        out = capsys.readouterr().out
        assert "blame" in out and "pending-mediators" in out

    def test_run_image_timeout_exits_three(self, diverging_program, tmp_path, capsys):
        image = str(tmp_path / "loop.gradb")
        assert main(["compile", diverging_program, "-o", image]) == 0
        assert main(["run", image, "--fuel", "5000"]) == 3

    def test_compile_shows_image_provenance(self, square_program, tmp_path, capsys):
        image = str(tmp_path / "square.gradb")
        assert main(["compile", square_program, "-o", image, "--mediator", "threesome",
                     "-O", "1"]) == 0
        capsys.readouterr()
        assert main(["compile", image]) == 0
        out = capsys.readouterr().out
        assert "mediator=threesome opt-level=1" in out
        assert "code 0 <main>" in out

    def test_image_rejects_flags_fixed_at_compile_time(self, square_program, tmp_path,
                                                       capsys):
        # Regression: --engine/--calculus/--mediator/-O/--small-step used
        # to be silently ignored when FILE was an image.
        image = str(tmp_path / "square.gradb")
        assert main(["compile", square_program, "-o", image]) == 0
        capsys.readouterr()
        for flags in (["--engine", "machine"], ["--engine", "subst"],
                      ["--calculus", "B"], ["--mediator", "threesome"],
                      ["-O", "0"], ["--small-step"]):
            assert main(["run", image, *flags]) == 2, flags
            assert "compile time" in capsys.readouterr().err
        # --engine vm, --fuel, --show-space, --no-cache remain compatible.
        assert main(["run", image, "--engine", "vm", "--fuel", "9999",
                     "--no-cache", "--show-space"]) == 0

    def test_compile_image_with_output_is_rejected(self, square_program, tmp_path,
                                                   capsys):
        image = str(tmp_path / "square.gradb")
        assert main(["compile", square_program, "-o", image]) == 0
        capsys.readouterr()
        assert main(["compile", image, "-o", str(tmp_path / "copy.gradb")]) == 2
        assert "already a compiled image" in capsys.readouterr().err

    def test_corrupt_image_is_a_static_error(self, tmp_path, capsys):
        image = tmp_path / "broken.gradb"
        image.write_bytes(b"GRADB\x00 definitely not a payload")
        assert main(["run", str(image)]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_cache_flag_still_runs(self, square_program, capsys):
        assert main(["run", square_program, "--engine", "vm", "--no-cache"]) == 0
        assert "36" in capsys.readouterr().out

    def test_cached_and_uncached_runs_agree(self, square_program, capsys):
        assert main(["run", square_program, "--engine", "vm"]) == 0
        first = capsys.readouterr().out
        assert main(["run", square_program, "--engine", "vm"]) == 0  # warm
        second = capsys.readouterr().out
        assert main(["run", square_program, "--engine", "vm", "--no-cache"]) == 0
        third = capsys.readouterr().out
        assert first == second == third


class TestShippedExamplePrograms:
    def test_square_example(self, capsys):
        assert main(["run", str(EXAMPLES / "square.grad")]) == 0
        assert "49" in capsys.readouterr().out

    def test_blame_example(self, capsys):
        assert main(["run", str(EXAMPLES / "boundary_blame.grad")]) == 1
        assert "blame" in capsys.readouterr().out

    def test_tail_loop_example_is_space_bounded_on_s(self, capsys):
        assert main(["run", str(EXAMPLES / "tail_loop.grad"), "--calculus", "S", "--show-space"]) == 0
        out = capsys.readouterr().out
        line = [ln for ln in out.splitlines() if "pending-mediators" in ln][0]
        assert "max=2" in line or "max=1" in line or "max=3" in line
