"""Tests for the primitive operators and their total meaning functions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import EvaluationError, TypeCheckError
from repro.core.ops import OPS, check_constant, constant_type, op_exists, op_spec
from repro.core.types import BOOL, INT, STR, UNIT


class TestRegistry:
    def test_known_operators_exist(self):
        for name in ("+", "-", "*", "/", "%", "=", "<", "zero?", "not", "and", "or"):
            assert op_exists(name)

    def test_unknown_operator_raises(self):
        with pytest.raises(TypeCheckError):
            op_spec("frobnicate")

    def test_specs_have_consistent_arity(self):
        for name, spec in OPS.items():
            assert spec.arity == len(spec.arg_types), name

    def test_every_result_type_is_a_base_type(self):
        for spec in OPS.values():
            assert spec.result_type in (INT, BOOL, STR, UNIT)


class TestMeaningFunctions:
    @pytest.mark.parametrize(
        "op, args, expected",
        [
            ("+", (2, 3), 5),
            ("-", (2, 3), -1),
            ("*", (4, 5), 20),
            ("/", (7, 2), 3),
            ("%", (7, 2), 1),
            ("neg", (5,), -5),
            ("abs", (-5,), 5),
            ("min", (2, 9), 2),
            ("max", (2, 9), 9),
            ("inc", (41,), 42),
            ("dec", (43,), 42),
            ("=", (3, 3), True),
            ("<", (2, 3), True),
            ("<=", (3, 3), True),
            (">", (2, 3), False),
            (">=", (2, 3), False),
            ("zero?", (0,), True),
            ("zero?", (1,), False),
            ("even?", (4,), True),
            ("odd?", (4,), False),
            ("not", (True,), False),
            ("and", (True, False), False),
            ("or", (True, False), True),
            ("bool=", (True, True), True),
            ("string-append", ("ab", "cd"), "abcd"),
            ("string-length", ("hello",), 5),
            ("string=", ("a", "a"), True),
            ("int->string", (42,), "42"),
        ],
    )
    def test_meaning(self, op, args, expected):
        assert op_spec(op).apply(args) == expected

    def test_division_by_zero_is_total(self):
        assert op_spec("/").apply((5, 0)) == 0
        assert op_spec("%").apply((5, 0)) == 0

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_arithmetic_preserves_int(self, a, b):
        """Type preservation of meaning functions: op : int×int → int."""
        for op in ("+", "-", "*", "/", "%", "min", "max"):
            assert isinstance(op_spec(op).apply((a, b)), int)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparisons_produce_bools(self, a, b):
        for op in ("=", "<", "<=", ">", ">="):
            assert isinstance(op_spec(op).apply((a, b)), bool)

    def test_wrong_arity_raises(self):
        with pytest.raises(EvaluationError):
            op_spec("+").apply((1,))

    def test_unit_operator(self):
        assert op_spec("unit").apply(()) is None


class TestConstants:
    def test_constant_types(self):
        assert constant_type(3) == INT
        assert constant_type(True) == BOOL
        assert constant_type("x") == STR
        assert constant_type(None) == UNIT

    def test_bool_is_not_an_int_constant(self):
        # Python bools are ints; the type assignment must pick bool first.
        assert constant_type(True) == BOOL

    def test_unsupported_constant(self):
        with pytest.raises(TypeCheckError):
            constant_type(3.14)

    def test_check_constant(self):
        assert check_constant(3, INT)
        assert not check_constant(3, BOOL)
        assert not check_constant(object(), INT)
