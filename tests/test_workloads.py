"""Tests for the hand-written gradually typed workloads of repro.gen.programs."""

from __future__ import annotations

import pytest

from repro.core.terms import is_closed
from repro.core.types import BOOL, INT, ProdType
from repro.gen.programs import (
    WORKLOADS,
    deep_cast_chain,
    even_odd_all_typed,
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    let_chain_boundary,
    pair_boundary_swap,
    tail_countdown_boundary,
    safe_boundary_program,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_b.typecheck import type_of
from repro.machine import run_on_machine


class TestStaticProperties:
    def test_all_workloads_are_closed_and_well_typed(self):
        programs = [
            even_odd_boundary(3),
            even_odd_all_typed(3),
            typed_loop_untyped_step(3),
            fib_boundary(3),
            twice_boundary(3),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            safe_boundary_program(),
            pair_boundary_swap(),
            deep_cast_chain(3),
            tail_countdown_boundary(3),
            let_chain_boundary(3),
        ]
        for program in programs:
            assert is_closed(program)
            type_of(program)  # must not raise

    def test_expected_types(self):
        assert type_of(even_odd_boundary(2)) == BOOL
        assert type_of(fib_boundary(2)) == INT
        assert type_of(typed_loop_untyped_step(2)) == INT
        assert type_of(pair_boundary_swap()) == ProdType(INT, BOOL)
        assert type_of(deep_cast_chain(4)) == INT
        assert type_of(tail_countdown_boundary(2)) == BOOL
        assert type_of(let_chain_boundary(2)) == INT

    def test_workload_registry(self):
        assert "even_odd_boundary" in WORKLOADS
        assert WORKLOADS["even_odd_boundary"] is even_odd_boundary
        assert WORKLOADS["tail_countdown_boundary"] is tail_countdown_boundary
        assert WORKLOADS["let_chain_boundary"] is let_chain_boundary


class TestRuntimeBehaviour:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 12])
    def test_even_odd_matches_the_reference(self, n):
        assert run_on_machine(even_odd_boundary(n), "S").python_value() is even_odd_expected(n)

    @pytest.mark.parametrize("n", [0, 1, 2, 5, 11])
    def test_fib_matches_the_reference(self, n):
        assert run_on_machine(fib_boundary(n), "S").python_value() == fib_expected(n)

    def test_even_odd_all_typed_control(self):
        assert run_on_machine(even_odd_all_typed(10), "B").python_value() is True
        assert run_on_machine(even_odd_all_typed(11), "B").python_value() is False

    def test_typed_loop(self):
        assert run_on_machine(typed_loop_untyped_step(37), "C").python_value() == 0

    def test_twice(self):
        assert run_on_machine(twice_boundary(0), "S").python_value() == 2

    @pytest.mark.parametrize("n", [0, 1, 9, 40])
    def test_tail_countdown_converges_to_true(self, n):
        assert run_on_machine(tail_countdown_boundary(n), "S").python_value() is True

    @pytest.mark.parametrize("depth", [0, 1, 5, 30])
    def test_let_chain_counts_its_depth(self, depth):
        assert run_on_machine(let_chain_boundary(depth), "S").python_value() == depth

    def test_deep_cast_chain_collapses_to_its_value(self):
        assert run_on_machine(deep_cast_chain(25), "S").python_value() == 42
        assert run_on_machine(deep_cast_chain(25), "B").python_value() == 42

    def test_blame_polarity_of_the_two_contract_scenarios(self):
        positive = run_on_machine(untyped_library_bad_result("edge"), "S")
        negative = run_on_machine(untyped_client_bad_argument("edge"), "S")
        assert positive.is_blame and positive.label.positive
        assert negative.is_blame and not negative.label.positive
        assert positive.label.name == negative.label.name == "edge"
