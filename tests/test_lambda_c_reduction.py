"""Tests for λC type checking and reduction (Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.errors import StuckError, TypeCheckError
from repro.core.labels import label
from repro.core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Fst,
    If,
    Lam,
    Let,
    Op,
    Pair,
    Snd,
    Var,
    const_bool,
    const_int,
)
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType, ProdType
from repro.lambda_c.coercions import (
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)
from repro.lambda_c.reduction import run, step
from repro.lambda_c.safety import mentioned_labels, term_safe_for
from repro.lambda_c.syntax import is_lambda_c_term, is_value
from repro.lambda_c.typecheck import type_of
from repro.translate.b_to_c import term_to_lambda_c

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")


class TestTypeChecking:
    def test_coercion_application_rule(self):
        term = Coerce(const_int(1), Inject(INT))
        assert type_of(term) == DYN

    def test_coercion_must_match_subject_type(self):
        with pytest.raises(TypeCheckError):
            type_of(Coerce(const_bool(True), Inject(INT)))

    def test_casts_are_rejected(self):
        with pytest.raises(TypeCheckError):
            type_of(Cast(const_int(1), INT, DYN, P))

    def test_non_lambda_c_coercion_rejected(self):
        from repro.lambda_s.coercions import IdBase

        with pytest.raises(TypeCheckError):
            type_of(Coerce(const_int(1), IdBase(INT)))

    def test_blame_subject(self):
        term = Coerce(Blame(P), Inject(INT))
        assert type_of(term) == DYN

    def test_is_lambda_c_term(self):
        assert is_lambda_c_term(Coerce(const_int(1), Identity(INT)))
        assert not is_lambda_c_term(Cast(const_int(1), INT, DYN, P))


class TestValues:
    def test_function_coercion_value(self):
        proxy = Coerce(Lam("x", INT, Var("x")), FunCoercion(Project(INT, P), Inject(INT)))
        assert is_value(proxy)

    def test_injection_value(self):
        assert is_value(Coerce(const_int(1), Inject(INT)))

    def test_product_coercion_value(self):
        proxy = Coerce(Pair(const_int(1), const_int(2)), ProdCoercion(Inject(INT), Inject(INT)))
        assert is_value(proxy)

    def test_identity_application_is_not_a_value(self):
        assert not is_value(Coerce(const_int(1), Identity(INT)))

    def test_sequence_application_is_not_a_value(self):
        assert not is_value(Coerce(const_int(1), Sequence(Identity(INT), Inject(INT))))


class TestReductionRules:
    def test_identity(self):
        assert step(Coerce(const_int(1), Identity(INT))) == const_int(1)

    def test_function_coercion_applied(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        c, d = Project(INT, P), Inject(INT)
        applied = App(Coerce(double, FunCoercion(c, d)), Coerce(const_int(3), Inject(INT)))
        stepped = step(applied)
        assert stepped == Coerce(App(double, Coerce(Coerce(const_int(3), Inject(INT)), c)), d)

    def test_matching_injection_projection_collapse(self):
        term = Coerce(Coerce(const_int(1), Inject(INT)), Project(INT, P))
        assert step(term) == const_int(1)

    def test_mismatched_projection_blames(self):
        term = Coerce(Coerce(const_int(1), Inject(INT)), Project(BOOL, P))
        assert step(term) == Blame(P)

    def test_composition_splits(self):
        term = Coerce(const_int(1), Sequence(Inject(INT), Project(INT, P)))
        assert step(term) == Coerce(Coerce(const_int(1), Inject(INT)), Project(INT, P))

    def test_fail_blames(self):
        term = Coerce(const_int(1), Fail(INT, P, BOOL))
        assert step(term) == Blame(P)

    def test_product_coercion_pushes_through_projections(self):
        proxy = Coerce(Pair(const_int(1), const_int(2)), ProdCoercion(Inject(INT), Identity(INT)))
        assert step(Fst(proxy)) == Coerce(Fst(Pair(const_int(1), const_int(2))), Inject(INT))
        assert step(Snd(proxy)) == Coerce(Snd(Pair(const_int(1), const_int(2))), Identity(INT))

    def test_blame_collapses_context(self):
        term = Op("+", (Coerce(Blame(P), Identity(INT)), const_int(1)))
        assert step(term) == Blame(P)

    def test_standard_rules_still_work(self):
        assert step(If(const_bool(False), const_int(1), const_int(2))) == const_int(2)
        assert step(Let("x", const_int(3), Var("x"))) == const_int(3)

    def test_stuck_application(self):
        with pytest.raises(StuckError):
            step(App(const_int(1), const_int(1)))


class TestRunAndSafety:
    def test_run_to_value(self):
        term = Coerce(Coerce(const_int(1), Inject(INT)), Project(INT, P))
        outcome = run(term)
        assert outcome.is_value and outcome.term == const_int(1)

    def test_run_to_blame(self):
        term = Coerce(const_int(1), Sequence(Inject(INT), Project(BOOL, Q)))
        outcome = run(term)
        assert outcome.is_blame and outcome.label == Q

    def test_term_safety(self):
        term = Coerce(const_int(1), Sequence(Inject(INT), Project(BOOL, Q)))
        assert not term_safe_for(term, Q)
        assert term_safe_for(term, P)
        assert mentioned_labels(term) == {Q}

    def test_safe_terms_do_not_blame_their_safe_labels(self):
        term = Coerce(const_int(1), Sequence(Inject(INT), Project(BOOL, Q)))
        outcome = run(term)
        assert outcome.is_blame and term_safe_for(term, outcome.label) is False

    @given(lambda_b_programs())
    def test_translated_generated_programs_run_like_lambda_b(self, program):
        """Kleene agreement between λB and λC on generated programs."""
        from repro.core.terms import erase
        from repro.lambda_b.reduction import run as run_b

        term_b, _ = program
        term_c = term_to_lambda_c(term_b)
        out_b = run_b(term_b, 20_000)
        out_c = run(term_c, 20_000)
        assert out_b.kind == out_c.kind
        if out_b.is_blame:
            assert out_b.label == out_c.label
        if out_b.is_value:
            from repro.core.terms import alpha_equal

            assert alpha_equal(erase(out_b.term), erase(out_c.term))
