"""Tests for the threesome mediator backend of the machine and the VM.

The paper's §6.1 claims threesomes and space-efficient coercions are two
presentations of the same thing.  PRs 1–2 validated the claim statically
(``compose_labeled`` against ``#`` through the representation maps); this
suite validates it *dynamically*: the λS CEK machine and the bytecode VM,
running with ``mediator="threesome"``, must be observationally
indistinguishable from the coercion backend — values, blame labels,
timeouts, and the constant pending-mediator footprint — on the boundary
workloads, the shipped example programs, and hypothesis-generated programs
(``check_mediator_oracle``).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.compiler import compile_term, run_on_vm
from repro.core.errors import UsageError
from repro.gen.programs import (
    even_odd_boundary,
    fib_boundary,
    let_chain_boundary,
    pair_boundary_swap,
    safe_boundary_program,
    tail_countdown_boundary,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.machine import MACHINE_S_THREESOME, run_on_machine
from repro.properties.bisimulation import check_mediator_oracle
from repro.surface.interp import compile_source, run_term
from repro.threesomes import Threesome, threesome_of_coercion
from repro.threesomes.labeled_types import LBase

from .strategies import lambda_b_programs

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "programs"


class TestThreesomeMachineBackend:
    def test_runs_values_through_the_threesome_policy(self):
        outcome = run_on_machine(even_odd_boundary(8), "S", mediator="threesome")
        assert outcome.is_value and outcome.python_value() is True

    def test_blame_labels_survive_the_representation_change(self):
        coercion = run_on_machine(untyped_library_bad_result(), "S", mediator="coercion")
        threesome = run_on_machine(untyped_library_bad_result(), "S", mediator="threesome")
        assert coercion.is_blame and threesome.is_blame
        assert coercion.label == threesome.label

    def test_boundary_tail_loop_keeps_one_pending_mediator(self):
        outcome = run_on_machine(tail_countdown_boundary(200), "S", mediator="threesome")
        assert outcome.is_value
        assert outcome.stats["max_pending_mediators"] == 1

    def test_pending_footprint_is_constant_in_the_iteration_count(self):
        small = run_on_machine(tail_countdown_boundary(10), "S", mediator="threesome")
        large = run_on_machine(tail_countdown_boundary(300), "S", mediator="threesome")
        assert (
            small.stats["max_pending_mediators"]
            == large.stats["max_pending_mediators"]
        )

    def test_all_pending_mediators_are_threesomes(self):
        # The machine's policy converts every term coercion on sight, so the
        # run never mixes representations.
        from repro.core.terms import Coerce
        from repro.machine.policy import THREESOME_POLICY
        from repro.translate import b_to_s

        term_s = b_to_s(even_odd_boundary(2))

        def coerce_nodes(term):
            from repro.core.terms import subterms

            return [t for t in subterms(term) if isinstance(t, Coerce)]

        for node in coerce_nodes(term_s):
            assert isinstance(THREESOME_POLICY.term_mediator(node), Threesome)
        assert MACHINE_S_THREESOME.policy is THREESOME_POLICY

    def test_rejects_non_s_calculi(self):
        with pytest.raises(UsageError):
            run_on_machine(even_odd_boundary(2), "B", mediator="threesome")
        with pytest.raises(UsageError):
            run_on_machine(even_odd_boundary(2), "C", mediator="threesome")

    def test_rejects_unknown_mediators(self):
        with pytest.raises(UsageError):
            run_on_machine(even_odd_boundary(2), "S", mediator="foursome")


class TestThreesomeVMBackend:
    def test_pool_entries_are_threesomes(self):
        code = compile_term(even_odd_boundary(2), mediator="threesome")
        assert code.pool.mediator == "threesome"
        assert code.pool.coercions  # boundary program has real mediators
        assert all(isinstance(entry, Threesome) for entry in code.pool.coercions)

    def test_pool_entries_are_interned(self):
        from repro.threesomes import is_interned_threesome

        code = compile_term(even_odd_boundary(2), mediator="threesome")
        assert all(is_interned_threesome(entry) for entry in code.pool.coercions)

    def test_identity_coercions_are_still_dropped(self):
        # Identity mediators vanish at lowering for both backends, so the
        # instruction streams are identical — only the pool representation
        # differs.
        from repro.compiler import instruction_streams

        for term in (even_odd_boundary(3), fib_boundary(5), pair_boundary_swap()):
            coercion_code = compile_term(term, mediator="coercion")
            threesome_code = compile_term(term, mediator="threesome")
            assert instruction_streams(coercion_code) == instruction_streams(threesome_code)

    def test_vm_runs_values_blame_and_space(self):
        # -O0 keeps the boundary mediators at run time: exactly one pending
        # threesome, composed in place.  At the default -O2 the optimizer
        # pre-composes this workload's chain away entirely (still ≤ 1).
        value = run_on_vm(tail_countdown_boundary(100), mediator="threesome", opt_level=0)
        assert value.is_value and value.python_value() is True
        assert value.stats["max_pending_mediators"] == 1
        optimized = run_on_vm(tail_countdown_boundary(100), mediator="threesome")
        assert optimized.is_value and optimized.stats["max_pending_mediators"] <= 1

        blame = run_on_vm(untyped_client_bad_argument(), mediator="threesome")
        reference = run_on_vm(untyped_client_bad_argument(), mediator="coercion")
        assert blame.is_blame and blame.label == reference.label

    def test_vm_timeout_is_uniform_across_backends(self):
        from repro.core.terms import App, Lam, Var
        from repro.core.types import DYN

        omega = App(Lam("x", DYN, App(Var("x"), Var("x"))),
                    Lam("x", DYN, App(Var("x"), Var("x"))))
        coercion = run_on_vm(omega, fuel=5_000, mediator="coercion")
        threesome = run_on_vm(omega, fuel=5_000, mediator="threesome")
        assert coercion.is_timeout and threesome.is_timeout
        assert coercion.stats["steps"] == threesome.stats["steps"] == 5_000


class TestMediatorOracle:
    """values / blame / timeout / space agreement between the two backends."""

    def test_mediator_oracle_on_the_boundary_workloads(self):
        for program in (
            even_odd_boundary(8),
            typed_loop_untyped_step(4),
            fib_boundary(6),
            twice_boundary(3),
            untyped_library_bad_result(),
            untyped_client_bad_argument(),
            safe_boundary_program(),
            pair_boundary_swap(),
            tail_countdown_boundary(40),
            let_chain_boundary(30),
        ):
            report = check_mediator_oracle(program)
            assert report.ok, report.reason

    def test_mediator_oracle_on_the_shipped_examples(self):
        for example in sorted(EXAMPLES.glob("*.grad")):
            term, _ = compile_source(example.read_text())
            report = check_mediator_oracle(term)
            assert report.ok, f"{example.name}: {report.reason}"

    def test_mediator_oracle_flags_timeout_disagreement(self):
        # Same fuel, same units: a diverging program must time out on both
        # backends at the same step count, and the check must treat a
        # one-sided timeout as a failure (strict, not inconclusive).
        from repro.core.terms import App, Lam, Var
        from repro.core.types import DYN

        omega = App(Lam("x", DYN, App(Var("x"), Var("x"))),
                    Lam("x", DYN, App(Var("x"), Var("x"))))
        report = check_mediator_oracle(omega, machine_fuel=3_000, vm_fuel=3_000)
        assert report.ok, report.reason

    @given(lambda_b_programs())
    @settings(max_examples=30, deadline=None)
    def test_mediator_oracle_on_generated_programs(self, program):
        term, _ = program
        report = check_mediator_oracle(term)
        assert report.ok, report.reason


class TestSurfaceMediatorKnob:
    def test_run_term_threads_the_mediator_through(self):
        term, ty = compile_source("(: (: 21 ?) int)")
        for engine in ("machine", "vm"):
            result = run_term(term, ty, engine=engine, mediator="threesome")
            assert result.is_value and result.value == 21
            assert result.mediator == "threesome"

    def test_subst_engine_has_no_threesome_backend(self):
        term, ty = compile_source("(: (: 21 ?) int)")
        with pytest.raises(UsageError):
            run_term(term, ty, engine="subst", mediator="threesome")

    def test_unknown_mediator_is_rejected(self):
        term, ty = compile_source("1")
        with pytest.raises(UsageError):
            run_term(term, ty, mediator="nonesuch")
