"""Tests for the surface-language lexer and parser."""

from __future__ import annotations

import pytest

from repro.core.errors import ParseError
from repro.core.types import BOOL, DYN, INT, STR, UNIT, FunType, ProdType
from repro.surface.ast import (
    SApp,
    SAscribe,
    SConst,
    SFst,
    SIf,
    SLam,
    SLet,
    SLetRec,
    SOp,
    SPair,
    SSnd,
    SVar,
)
from repro.surface.lexer import tokenize
from repro.surface.parser import parse, parse_program, parse_type


class TestLexer:
    def test_tokenizes_parens_and_symbols(self):
        tokens = tokenize("(+ 1 x)")
        assert [t.kind for t in tokens] == ["lparen", "symbol", "int", "symbol", "rparen"]

    def test_tracks_line_and_column(self):
        tokens = tokenize("(f\n  42)")
        forty_two = [t for t in tokens if t.text == "42"][0]
        assert forty_two.location.line == 2
        assert forty_two.location.column == 3

    def test_string_literals(self):
        tokens = tokenize('(f "hello world")')
        assert any(t.kind == "string" and t.text == "hello world" for t in tokens)

    def test_string_escapes(self):
        tokens = tokenize('"a\\nb"')
        assert tokens[0].text == "a\nb"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_comments_are_skipped(self):
        tokens = tokenize("; a comment\n42")
        assert len(tokens) == 1 and tokens[0].kind == "int"

    def test_booleans_and_negative_numbers(self):
        kinds = {t.text: t.kind for t in tokenize("#t false -3 +4 -")}
        assert kinds["#t"] == "bool"
        assert kinds["false"] == "bool"
        assert kinds["-3"] == "int"
        assert kinds["+4"] == "int"
        assert kinds["-"] == "symbol"

    def test_brackets(self):
        kinds = [t.kind for t in tokenize("[x : int]")]
        assert kinds == ["lbracket", "symbol", "symbol", "symbol", "rbracket"]

    def test_backslash_newline_in_string_still_bumps_the_line(self):
        # Regression: the escape branch used to consume a backslash-newline
        # pair without bumping `line`, so every later token — and therefore
        # every blame label minted from its location — pointed one line high.
        tokens = tokenize('"a\\\nb" later')
        later = [t for t in tokens if t.text == "later"][0]
        assert later.location.line == 2
        assert later.location.column == 4

    def test_multiple_backslash_newlines_accumulate_lines(self):
        tokens = tokenize('"x\\\n\\\ny" tok')
        tok = [t for t in tokens if t.text == "tok"][0]
        assert tok.location.line == 3

    def test_plain_newline_in_string_is_still_rejected(self):
        with pytest.raises(ParseError):
            tokenize('"a\nb"')


class TestTypeParsing:
    def test_base_types(self):
        assert parse_type("int") == INT
        assert parse_type("bool") == BOOL
        assert parse_type("str") == STR
        assert parse_type("unit") == UNIT

    def test_dynamic_type_spellings(self):
        assert parse_type("?") == DYN
        assert parse_type("dyn") == DYN
        assert parse_type("Dyn") == DYN

    def test_function_types_are_right_associative(self):
        assert parse_type("(-> int bool)") == FunType(INT, BOOL)
        assert parse_type("(-> int int bool)") == FunType(INT, FunType(INT, BOOL))

    def test_product_types(self):
        assert parse_type("(* int ?)") == ProdType(INT, DYN)

    def test_nested_types(self):
        assert parse_type("(-> (* int int) ?)") == FunType(ProdType(INT, INT), DYN)

    def test_unknown_type_name(self):
        with pytest.raises(ParseError):
            parse_type("float")

    def test_malformed_arrow(self):
        with pytest.raises(ParseError):
            parse_type("(-> int)")


class TestExpressionParsing:
    def test_literals(self):
        assert parse("42") == SConst(42, parse("42").location)
        assert isinstance(parse("#t"), SConst) and parse("#t").value is True
        assert parse('"hi"').value == "hi"
        assert parse("unit").value is None

    def test_variables(self):
        assert isinstance(parse("x"), SVar)

    def test_lambda_with_annotations(self):
        expr = parse("(lambda ([x : int]) x)")
        assert isinstance(expr, SLam)
        assert expr.params == (("x", INT),)

    def test_lambda_without_annotations_defaults_to_dyn(self):
        expr = parse("(lambda (x) x)")
        assert expr.params == (("x", DYN),)

    def test_multi_parameter_lambda(self):
        expr = parse("(lambda ([x : int] y) (+ x 1))")
        assert expr.params == (("x", INT), ("y", DYN))

    def test_application_is_curried_at_elaboration_not_parsing(self):
        expr = parse("(f 1 2)")
        assert isinstance(expr, SApp)
        assert len(expr.args) == 2

    def test_operators_parse_as_sop(self):
        expr = parse("(+ 1 2)")
        assert isinstance(expr, SOp) and expr.op == "+"

    def test_if_let_letrec(self):
        assert isinstance(parse("(if #t 1 2)"), SIf)
        assert isinstance(parse("(let ([x 1]) x)"), SLet)
        letrec = parse("(letrec ([f : (-> int int) (lambda ([n : int]) n)]) (f 3))")
        assert isinstance(letrec, SLetRec)
        assert letrec.annotation == FunType(INT, INT)

    def test_pairs_and_projections(self):
        assert isinstance(parse("(pair 1 2)"), SPair)
        assert isinstance(parse("(cons 1 2)"), SPair)
        assert isinstance(parse("(fst p)"), SFst)
        assert isinstance(parse("(snd p)"), SSnd)

    def test_ascriptions(self):
        expr = parse("(: 42 ?)")
        assert isinstance(expr, SAscribe)
        assert expr.annotation == DYN
        assert isinstance(parse("(ann 42 int)"), SAscribe)

    def test_source_locations_flow_into_the_ast(self):
        expr = parse("(: 42\n   int)")
        assert expr.location.line == 1

    def test_malformed_forms(self):
        for source in ["(lambda)", "(if #t 1)", "(let (x) 1)", "()", "(fst)", "(: 1)"]:
            with pytest.raises(ParseError):
                parse(source)

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse("(+ 1 2")
        with pytest.raises(ParseError):
            parse(")")


class TestProgramParsing:
    def test_defines_and_main(self):
        program = parse_program(
            """
            (define (square [x : int]) : int (* x x))
            (define limit : int 10)
            (square limit)
            """
        )
        assert len(program.definitions) == 2
        assert program.definitions[0].name == "square"
        assert program.definitions[0].annotation == FunType(INT, INT)
        assert program.definitions[1].annotation == INT
        assert isinstance(program.main, SApp)

    def test_define_without_annotation(self):
        program = parse_program("(define f (lambda (x) x)) (f 1)")
        assert program.definitions[0].annotation is None

    def test_main_must_come_last(self):
        with pytest.raises(ParseError):
            parse_program("(square 2) (define (square [x : int]) : int (* x x))")

    def test_only_one_main_expression(self):
        with pytest.raises(ParseError):
            parse_program("1 2")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("   ;; nothing here\n")

    def test_parse_rejects_programs_with_definitions(self):
        with pytest.raises(ParseError):
            parse("(define x 1) x")
