"""Tests for λS reduction (Figure 5): merge-first discipline, values, rules."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.errors import StuckError, TypeCheckError
from repro.core.labels import label
from repro.core.terms import (
    App,
    Blame,
    Cast,
    Coerce,
    Fst,
    If,
    Lam,
    Op,
    Pair,
    Snd,
    Var,
    const_bool,
    const_int,
    max_adjacent_coercions,
)
from repro.core.types import BOOL, DYN, GROUND_FUN, INT, FunType, ProdType
from repro.lambda_s.coercions import (
    ID_DYN,
    FailS,
    FunCo,
    IdBase,
    Injection,
    ProdCo,
    Projection,
    compose,
)
from repro.lambda_s.reduction import run, step, trace
from repro.lambda_s.syntax import is_lambda_s_term, is_uncoerced_value, is_value, pending_coercion_size
from repro.lambda_s.typecheck import type_of
from repro.translate import b_to_s

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")

ID_INT = IdBase(INT)
INT_INJ = Injection(ID_INT, INT)
INT_PROJ = Projection(INT, P, ID_INT)
BOOL_PROJ = Projection(BOOL, Q, IdBase(BOOL))


class TestTypingAndValues:
    def test_coercion_application_typing(self):
        assert type_of(Coerce(const_int(1), INT_INJ)) == DYN

    def test_rejects_lambda_c_coercions(self):
        from repro.lambda_c.coercions import Identity

        with pytest.raises(TypeCheckError):
            type_of(Coerce(const_int(1), Identity(INT)))

    def test_rejects_casts(self):
        with pytest.raises(TypeCheckError):
            type_of(Cast(const_int(1), INT, DYN, P))

    def test_uncoerced_values(self):
        assert is_uncoerced_value(const_int(1))
        assert is_uncoerced_value(Lam("x", INT, Var("x")))
        assert is_uncoerced_value(Pair(const_int(1), const_bool(True)))
        assert not is_uncoerced_value(Coerce(const_int(1), INT_INJ))

    def test_values_carry_at_most_one_coercion(self):
        injected = Coerce(const_int(1), INT_INJ)
        assert is_value(injected)
        assert not is_value(Coerce(injected, Projection(INT, P, ID_INT)))

    def test_function_and_product_proxies_are_values(self):
        fun_proxy = Coerce(Lam("x", INT, Var("x")), FunCo(INT_PROJ, INT_INJ))
        assert is_value(fun_proxy)
        pair_proxy = Coerce(Pair(const_int(1), const_int(2)), ProdCo(INT_INJ, INT_INJ))
        assert is_value(pair_proxy)

    def test_identity_application_is_not_a_value(self):
        assert not is_value(Coerce(const_int(1), ID_INT))
        assert not is_value(Coerce(Coerce(const_int(1), INT_INJ), ID_DYN))

    def test_is_lambda_s_term(self):
        assert is_lambda_s_term(Coerce(const_int(1), INT_INJ))
        from repro.lambda_c.coercions import Identity

        assert not is_lambda_s_term(Coerce(const_int(1), Identity(INT)))

    def test_pending_coercion_size(self):
        term = Coerce(Coerce(const_int(1), INT_INJ), INT_PROJ)
        # (idι ; int!) has size 2 and (int?p ; idι) has size 2.
        assert pending_coercion_size(term) == 4


class TestMergeFirstDiscipline:
    def test_adjacent_coercions_merge(self):
        term = Coerce(Coerce(const_int(1), INT_INJ), INT_PROJ)
        assert step(term) == Coerce(const_int(1), compose(INT_INJ, INT_PROJ))
        assert step(term) == Coerce(const_int(1), ID_INT)

    def test_merge_has_priority_over_evaluating_the_subject(self):
        inner = Op("+", (const_int(1), const_int(1)))
        term = Coerce(Coerce(inner, INT_INJ), INT_PROJ)
        stepped = step(term)
        # The coercions merge before the addition is performed.
        assert stepped == Coerce(inner, ID_INT)

    def test_merge_of_mismatched_round_trip_produces_fail(self):
        inner = Op("+", (const_int(1), const_int(1)))
        term = Coerce(Coerce(inner, INT_INJ), BOOL_PROJ)
        stepped = step(term)
        assert isinstance(stepped, Coerce)
        assert stepped.coercion == FailS(INT, Q, BOOL)
        # The failure only fires once the subject is a value.
        outcome = run(term)
        assert outcome.is_blame and outcome.label == Q

    def test_evaluation_is_allowed_under_a_single_coercion(self):
        term = Coerce(Op("+", (const_int(1), const_int(1))), ID_INT)
        assert step(term) == Coerce(const_int(2), ID_INT)

    def test_the_chain_never_grows_beyond_the_static_bound(self):
        program = b_to_s(_boundary_roundtrip_program())
        bound = max(max_adjacent_coercions(program), 1) + 1
        for state in trace(program, 10_000):
            assert max_adjacent_coercions(state) <= bound


def _boundary_roundtrip_program():
    from repro.gen.programs import even_odd_boundary

    return even_odd_boundary(9)


class TestReductionRules:
    def test_identity_rules(self):
        assert step(Coerce(const_int(1), ID_INT)) == const_int(1)
        injected = Coerce(const_int(1), INT_INJ)
        assert step(Coerce(injected, ID_DYN)) == Coerce(const_int(1), compose(INT_INJ, ID_DYN))

    def test_fail_rule(self):
        assert step(Coerce(const_int(1), FailS(INT, P, BOOL))) == Blame(P)

    def test_function_proxy_application(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        proxy = Coerce(double, FunCo(INT_PROJ, INT_INJ))
        applied = App(proxy, Coerce(const_int(3), INT_INJ))
        stepped = step(applied)
        assert stepped == Coerce(App(double, Coerce(Coerce(const_int(3), INT_INJ), INT_PROJ)), INT_INJ)

    def test_product_proxy_projection(self):
        proxy = Coerce(Pair(const_int(1), const_int(2)), ProdCo(INT_INJ, ID_INT))
        assert step(Fst(proxy)) == Coerce(Fst(Pair(const_int(1), const_int(2))), INT_INJ)
        assert step(Snd(proxy)) == Coerce(Snd(Pair(const_int(1), const_int(2))), ID_INT)

    def test_projection_of_injected_value_via_merge(self):
        injected = Coerce(const_int(1), INT_INJ)
        term = Coerce(injected, INT_PROJ)
        outcome = run(term)
        assert outcome.is_value and outcome.term == const_int(1)

    def test_mismatched_projection_blames(self):
        injected = Coerce(const_int(1), INT_INJ)
        outcome = run(Coerce(injected, BOOL_PROJ))
        assert outcome.is_blame and outcome.label == Q

    def test_blame_collapses_context(self):
        term = Op("+", (Coerce(Blame(P), ID_INT), const_int(1)))
        assert step(term) == Blame(P)

    def test_standard_rules(self):
        assert step(If(const_bool(True), const_int(1), const_int(2))) == const_int(1)
        assert step(Op("*", (const_int(6), const_int(7)))) == const_int(42)

    def test_stuck_projection_of_uncoerced_value(self):
        with pytest.raises(StuckError):
            step(Coerce(const_int(1), INT_PROJ))


class TestRunAgainstLambdaB:
    @given(lambda_b_programs())
    def test_generated_programs_agree_with_lambda_b(self, program):
        from repro.core.terms import alpha_equal, erase
        from repro.lambda_b.reduction import run as run_b

        term_b, _ = program
        out_b = run_b(term_b, 20_000)
        out_s = run(b_to_s(term_b), 50_000)
        assert out_b.kind == out_s.kind
        if out_b.is_blame:
            assert out_b.label == out_s.label
        if out_b.is_value:
            assert alpha_equal(erase(out_b.term), erase(out_s.term))
