"""Tests for gradual type checking and cast insertion (the GTLC elaboration)."""

from __future__ import annotations

import pytest

from repro.core.terms import Cast, count_casts
from repro.core.types import BOOL, DYN, INT, FunType, ProdType
from repro.lambda_b.typecheck import type_of as type_b
from repro.surface.cast_insertion import ElaborationError, elaborate, elaborate_program
from repro.surface.consistency import branch_join, consistent, fun_match, prod_match
from repro.surface.interp import compile_source, run_source
from repro.surface.parser import parse, parse_program
from repro.surface.typecheck import (
    static_errors,
    type_of_program,
    type_of_surface,
    well_typed_surface,
)


class TestConsistency:
    def test_consistency_examples(self):
        assert consistent(INT, DYN)
        assert consistent(DYN, FunType(INT, BOOL))
        assert consistent(FunType(INT, DYN), FunType(DYN, BOOL))
        assert not consistent(INT, BOOL)
        assert not consistent(FunType(INT, INT), INT)

    def test_fun_match(self):
        assert fun_match(FunType(INT, BOOL)) == FunType(INT, BOOL)
        assert fun_match(DYN) == FunType(DYN, DYN)
        assert fun_match(INT) is None

    def test_prod_match(self):
        assert prod_match(ProdType(INT, BOOL)) == ProdType(INT, BOOL)
        assert prod_match(DYN) == ProdType(DYN, DYN)
        assert prod_match(INT) is None

    def test_branch_join_keeps_precision(self):
        assert branch_join(INT, DYN) == INT
        assert branch_join(DYN, FunType(INT, DYN)) == FunType(INT, DYN)
        assert branch_join(INT, BOOL) is None


class TestTypeChecking:
    def test_simple_types(self):
        assert type_of_surface(parse("42")) == INT
        assert type_of_surface(parse("(+ 1 2)")) == INT
        assert type_of_surface(parse("(zero? 0)")) == BOOL
        assert type_of_surface(parse("(lambda ([x : int]) x)")) == FunType(INT, INT)

    def test_dynamic_parameters(self):
        assert type_of_surface(parse("(lambda (x) x)")) == FunType(DYN, DYN)

    def test_application_of_a_dynamic_function_has_type_dyn(self):
        assert type_of_surface(parse("(lambda (f) (f 1))")) == FunType(DYN, DYN)

    def test_ascription_changes_the_type(self):
        assert type_of_surface(parse("(: 42 ?)")) == DYN

    def test_pairs(self):
        assert type_of_surface(parse("(pair 1 #t)")) == ProdType(INT, BOOL)
        assert type_of_surface(parse("(fst (pair 1 #t))")) == INT

    def test_letrec(self):
        source = "(letrec ([f : (-> int int) (lambda ([n : int]) (f n))]) f)"
        assert type_of_surface(parse(source)) == FunType(INT, INT)

    def test_static_errors_are_reported(self):
        for source in [
            "(+ 1 #t)",                                  # bool where int expected
            "(1 2)",                                     # applying an int
            "(if 1 2 3)",                                # non-bool test of non-dyn type
            "(if #t 1 #f)",                              # inconsistent branches
            "(: (lambda ([x : bool]) x) (-> int int))",  # inconsistent ascription
            "(fst 3)",
            "x",                                         # unbound variable
        ]:
            assert not well_typed_surface(parse(source)), source

    def test_dynamic_code_is_always_well_typed(self):
        # The untyped fragment embeds fully: everything checks at ?.
        source = "((lambda (f) (f (f 1))) (lambda (x) (+ x 1)))"
        assert well_typed_surface(parse(source))

    def test_program_types(self):
        program = parse_program("(define (id [x : int]) : int x) (id 3)")
        assert type_of_program(program) == INT

    def test_static_errors_helper(self):
        program = parse_program("(+ 1 #t)")
        assert static_errors(program)
        assert not static_errors(parse_program("(+ 1 2)"))


class TestCastInsertion:
    def test_no_casts_for_fully_typed_code(self):
        term, ty = elaborate(parse("((lambda ([x : int]) (* x x)) 7)"))
        assert ty == INT
        assert count_casts(term) == 0

    def test_cast_inserted_at_a_consistency_site(self):
        term, ty = elaborate(parse("((lambda ([x : int]) (* x x)) (: 7 ?))"))
        assert ty == INT
        assert count_casts(term) == 2  # 7 ⇒ ?  and  ? ⇒ int

    def test_blame_labels_point_at_source_locations(self):
        term, _ = elaborate(parse("((lambda ([x : int]) x)\n (: 7 ?))"))
        labels = [t.label.name for t in _all_casts(term)]
        assert any("1:" in name or "2:" in name for name in labels)

    def test_elaborated_terms_are_well_typed_lambda_b(self):
        sources = [
            "((lambda ([x : int]) (* x x)) (: 7 ?))",
            "(lambda (f) (f 1))",
            "(if (: #t ?) 1 2)",
            "(letrec ([f : (-> int int) (lambda ([n : int]) (if (zero? n) 0 (f (- n 1))))]) (f 3))",
            "(snd (: (pair 1 #t) ?))",
        ]
        for source in sources:
            term, ty = elaborate(parse(source))
            assert type_b(term) == ty, source

    def test_dynamic_function_position_gets_a_fun_cast(self):
        term, _ = elaborate(parse("(lambda (f) (f 1))"))
        assert count_casts(term) >= 2  # f ⇒ ?→?  and  1 ⇒ ?

    def test_if_branches_are_cast_to_the_join(self):
        term, ty = elaborate(parse("(if #t 1 (: 2 ?))"))
        assert ty == INT
        assert count_casts(term) >= 1

    def test_program_elaboration_binds_definitions_in_order(self):
        program = parse_program(
            """
            (define (double [x : int]) : int (* x 2))
            (define (quad [x : int]) : int (double (double x)))
            (quad 4)
            """
        )
        term, ty = elaborate_program(program)
        assert ty == INT
        assert type_b(term) == INT

    def test_unknown_definition_reference_is_an_error(self):
        program = parse_program("(define (f [x : int]) : int (g x)) (f 1)")
        with pytest.raises(ElaborationError):
            elaborate_program(program)


def _all_casts(term):
    from repro.core.terms import subterms

    return [t for t in subterms(term) if isinstance(t, Cast)]


class TestEndToEndExecution:
    def test_fully_typed_program(self):
        result = run_source("((lambda ([x : int]) (* x x)) 7)")
        assert result.is_value and result.value == 49

    def test_gradual_program_runs_on_every_backend(self):
        source = "((lambda ([x : int]) (* x x)) (: 7 ?))"
        for calculus in ("B", "C", "S"):
            assert run_source(source, calculus).value == 49
            assert run_source(source, calculus, use_machine=False).value == 49

    def test_recursive_program(self):
        source = """
        (define (sum [n : int]) : int
          (if (zero? n) 0 (+ n (sum (- n 1)))))
        (sum 10)
        """
        assert run_source(source).value == 55

    def test_dynamically_typed_recursion(self):
        source = """
        (letrec ([count : ?
                  (lambda (n) (if (zero? n) 0 (count (- n 1))))])
          (count 25))
        """
        result = run_source(source)
        assert result.is_value and result.value == 0

    def test_untyped_library_typed_client_blames_the_library(self):
        source = """
        (define lib : ? (lambda (x) #t))          ; promises int -> int below, returns a bool
        (define use : (-> int int) (: lib (-> int int)))
        (+ 1 (use 3))
        """
        result = run_source(source)
        assert result.is_blame
        assert "3:" in result.blame_label.name  # the ascription on line 3

    def test_typed_library_untyped_client_blames_the_client(self):
        source = """
        (define (inc [x : int]) : int (+ x 1))
        (define client : ? (lambda (f) (f #t)))
        (client (: inc ?))
        """
        result = run_source(source)
        assert result.is_blame
        assert not result.blame_label.positive

    def test_boundary_crossing_loop_is_space_bounded_on_the_s_machine(self):
        # A tail-recursive function whose result round-trips through ? at
        # every level: the result casts break the tail call in λB but are
        # merged away by the λS machine.
        source = """
        (define (loop [n : int]) : bool
          (if (zero? n) #t (: (: (loop (- n 1)) ?) bool)))
        (loop 300)
        """
        result_s = run_source(source, "S")
        result_b = run_source(source, "B")
        assert result_s.value is True and result_b.value is True
        assert result_s.space_stats["max_pending_mediators"] <= 4
        assert result_b.space_stats["max_pending_mediators"] >= 300

    def test_compile_source_returns_a_closed_term(self):
        from repro.core.terms import is_closed

        term, ty = compile_source("(define (id [x : int]) : int x) (id 1)")
        assert is_closed(term) and ty == INT
