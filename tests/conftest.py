"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings


@pytest.fixture(autouse=True)
def _isolated_compile_cache(tmp_path, monkeypatch):
    """Point the on-disk compile cache at a per-test directory.

    The CLI's ``run`` compiles through the cache by default, so without
    this the test suite would read and write ``~/.cache/repro-gradual``.
    """
    monkeypatch.setenv("REPRO_GRADUAL_CACHE_DIR", str(tmp_path / "compile-cache"))


@pytest.fixture(autouse=True)
def _no_fault_plan():
    """Reset the process-global fault-injection plan around every test.

    ``current_plan`` caches its environment read, so a test that installs a
    plan (or sets ``REPRO_GRADUAL_FAULTS``) must not leak it into the next.
    """
    from repro.core.faults import reset_plan

    reset_plan()
    yield
    reset_plan()

# A single moderate profile: the generators build whole programs, so a few
# hundred examples per property is plenty and keeps the suite fast.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """A seeded random source for reproducible randomised tests."""
    return random.Random(20150613)  # PLDI 2015, June 13


@pytest.fixture
def label_p():
    from repro.core import label

    return label("p")


@pytest.fixture
def label_q():
    from repro.core import label

    return label("q")
