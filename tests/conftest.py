"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the generators build whole programs, so a few
# hundred examples per property is plenty and keeps the suite fast.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> random.Random:
    """A seeded random source for reproducible randomised tests."""
    return random.Random(20150613)  # PLDI 2015, June 13


@pytest.fixture
def label_p():
    from repro.core import label

    return label("p")


@pytest.fixture
def label_q():
    from repro.core import label

    return label("q")
