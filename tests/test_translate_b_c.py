"""Tests for the translation |·|BC from λB to λC (Figure 4) and Proposition 10."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.errors import TypeCheckError
from repro.core.labels import label
from repro.core.terms import App, Blame, Cast, Coerce, Lam, Op, Var, const_int
from repro.core.types import BOOL, DYN, GROUND_FUN, GROUND_PROD, INT, FunType, ProdType, types_equal
from repro.lambda_b.safety import term_safe_for as safe_b
from repro.lambda_b.typecheck import type_of as type_b
from repro.lambda_c.coercions import (
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
    check_coercion,
)
from repro.lambda_c.safety import term_safe_for as safe_c
from repro.lambda_c.typecheck import type_of as type_c
from repro.properties.blame_safety import labels_in_term
from repro.translate.b_to_c import cast_to_coercion, term_to_lambda_c

from .strategies import compatible_type_pairs, lambda_b_programs

P = label("p")
Q = label("q")
I2I = FunType(INT, INT)


class TestCastTranslation:
    def test_base_identity(self):
        assert cast_to_coercion(INT, P, INT) == Identity(INT)

    def test_dyn_identity(self):
        assert cast_to_coercion(DYN, P, DYN) == Identity(DYN)

    def test_ground_injection(self):
        assert cast_to_coercion(INT, P, DYN) == Inject(INT)
        assert cast_to_coercion(GROUND_FUN, P, DYN) == Inject(GROUND_FUN)

    def test_ground_projection_carries_the_label(self):
        assert cast_to_coercion(DYN, P, INT) == Project(INT, P)

    def test_non_ground_injection_factors_through_the_ground_type(self):
        coercion = cast_to_coercion(I2I, P, DYN)
        assert coercion == Sequence(cast_to_coercion(I2I, P, GROUND_FUN), Inject(GROUND_FUN))

    def test_non_ground_projection_factors_through_the_ground_type(self):
        coercion = cast_to_coercion(DYN, P, I2I)
        assert coercion == Sequence(Project(GROUND_FUN, P), cast_to_coercion(GROUND_FUN, P, I2I))

    def test_function_cast_complements_the_domain_label(self):
        coercion = cast_to_coercion(I2I, P, FunType(DYN, INT))
        assert coercion == FunCoercion(
            cast_to_coercion(DYN, P.complement(), INT), cast_to_coercion(INT, P, INT)
        )

    def test_product_cast_is_covariant(self):
        coercion = cast_to_coercion(ProdType(INT, INT), P, GROUND_PROD)
        assert coercion == ProdCoercion(Inject(INT), Inject(INT))

    def test_incompatible_cast_is_rejected(self):
        with pytest.raises(TypeCheckError):
            cast_to_coercion(INT, P, BOOL)

    @given(compatible_type_pairs())
    def test_translation_has_the_same_typing_as_the_cast(self, pair):
        """|A ⇒p B|BC : A ⇒ B (the coercion half of Proposition 10)."""
        source, target = pair
        coercion = cast_to_coercion(source, P, target)
        assert types_equal(check_coercion(coercion, source), target)

    @given(compatible_type_pairs())
    def test_translation_mentions_only_the_cast_label(self, pair):
        from repro.lambda_c.coercions import labels_of

        source, target = pair
        mentioned = labels_of(cast_to_coercion(source, P, target))
        assert mentioned <= {P, P.complement()}


class TestTermTranslation:
    def test_casts_become_coercions(self):
        term = Cast(const_int(1), INT, DYN, P)
        assert term_to_lambda_c(term) == Coerce(const_int(1), Inject(INT))

    def test_translation_is_homomorphic(self):
        term = App(Lam("x", DYN, Var("x")), Cast(const_int(1), INT, DYN, P))
        translated = term_to_lambda_c(term)
        assert translated == App(Lam("x", DYN, Var("x")), Coerce(const_int(1), Inject(INT)))

    def test_blame_is_preserved(self):
        assert term_to_lambda_c(Blame(P)) == Blame(P)

    def test_coercions_are_rejected_as_input(self):
        with pytest.raises(TypeCheckError):
            term_to_lambda_c(Coerce(const_int(1), Identity(INT)))

    @given(lambda_b_programs())
    def test_proposition_10_type_preservation(self, program):
        term, ty = program
        translated = term_to_lambda_c(term)
        assert types_equal(type_c(translated), type_b(term))
        assert types_equal(type_c(translated), ty)

    @given(lambda_b_programs())
    def test_proposition_10_blame_safety_preservation(self, program):
        term, _ = program
        translated = term_to_lambda_c(term)
        for q in labels_in_term(term):
            if safe_b(term, q):
                assert safe_c(translated, q)
