"""Tests for the CEK abstract machines: correctness against the small-step
semantics and the space-profiling claims."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.labels import label
from repro.core.terms import App, Cast, Const, Lam, Op, Pair, Var, const_bool, const_int, erase
from repro.core.types import BOOL, DYN, INT, FunType, ProdType
from repro.gen.programs import (
    even_odd_all_typed,
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    pair_boundary_swap,
    safe_boundary_program,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_b.reduction import run as run_b_small_step
from repro.machine import MACHINE_B, MACHINE_C, MACHINE_S, MACHINES, run_on_machine
from repro.machine.values import MConst, MPair, MProxy, machine_value_to_python, proxy_depth

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")


class TestMachineValues:
    def test_python_projection_of_constants_and_pairs(self):
        value = MPair(MConst(1, INT), MConst(True, BOOL))
        assert machine_value_to_python(value) == (1, True)

    def test_python_projection_unwraps_proxies(self):
        value = MProxy(MConst(1, INT), mediator=None)
        assert machine_value_to_python(value) == 1

    def test_proxy_depth(self):
        value = MProxy(MProxy(MConst(1, INT), None), None)
        assert proxy_depth(value) == 2


class TestOutcomesMatchTheSmallStepSemantics:
    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_simple_value(self, calculus):
        term = Op("+", (const_int(40), const_int(2)))
        outcome = run_on_machine(term, calculus)
        assert outcome.is_value and outcome.python_value() == 42

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_first_order_round_trip(self, calculus):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q)
        assert run_on_machine(term, calculus).python_value() == 1

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_failed_projection_blames_the_right_label(self, calculus):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q)
        outcome = run_on_machine(term, calculus)
        assert outcome.is_blame and outcome.label == Q

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_higher_order_proxies(self, calculus):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        proxied = Cast(Cast(double, FunType(INT, INT), DYN, P), DYN, FunType(INT, INT), Q)
        outcome = run_on_machine(App(proxied, const_int(5)), calculus)
        assert outcome.python_value() == 10

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_negative_blame(self, calculus):
        outcome = run_on_machine(untyped_client_bad_argument("edge"), calculus)
        assert outcome.is_blame and outcome.label == label("edge").complement()

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_pairs_across_the_boundary(self, calculus):
        outcome = run_on_machine(pair_boundary_swap(), calculus)
        assert outcome.python_value() == (7, True)

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_recursion_through_fix(self, calculus):
        outcome = run_on_machine(fib_boundary(10), calculus)
        assert outcome.python_value() == fib_expected(10)

    def test_timeout_reported(self):
        loop = Lam("f", FunType(INT, INT), Lam("x", INT, App(Var("f"), Var("x"))))
        from repro.core.terms import Fix

        diverging = App(Fix(loop, FunType(INT, INT)), const_int(0))
        outcome = MACHINE_B.run(diverging, fuel=500)
        assert outcome.is_timeout

    @given(lambda_b_programs())
    @settings(max_examples=40)
    def test_agreement_with_the_small_step_reducer_on_generated_programs(self, program):
        term, _ = program
        reference = run_b_small_step(term, 20_000)
        for calculus in ("B", "C", "S"):
            outcome = run_on_machine(term, calculus)
            assert outcome.kind == reference.kind
            if reference.is_blame:
                assert outcome.label == reference.label
            if reference.is_value:
                erased = erase(reference.term)
                if isinstance(erased, Const):
                    assert outcome.python_value() == erased.value

    @pytest.mark.parametrize("calculus", ["B", "C", "S"])
    def test_workload_results(self, calculus):
        assert run_on_machine(even_odd_boundary(9), calculus).python_value() is even_odd_expected(9)
        assert run_on_machine(typed_loop_untyped_step(20), calculus).python_value() == 0
        assert run_on_machine(twice_boundary(5), calculus).python_value() == 7
        assert run_on_machine(safe_boundary_program(), calculus).python_value() == 8
        assert run_on_machine(untyped_library_bad_result(), calculus).is_blame


class TestSpaceProfile:
    """The quantitative space claims of Section 1 / Herman et al."""

    def test_pending_mediators_grow_linearly_without_merging(self):
        small = run_on_machine(even_odd_boundary(50), "B").stats
        large = run_on_machine(even_odd_boundary(200), "B").stats
        assert large["max_pending_mediators"] >= 4 * small["max_pending_mediators"] * 0.9

    def test_pending_mediators_grow_in_lambda_c_too(self):
        small = run_on_machine(even_odd_boundary(50), "C").stats
        large = run_on_machine(even_odd_boundary(200), "C").stats
        assert large["max_pending_mediators"] > small["max_pending_mediators"]

    def test_pending_mediators_are_constant_in_lambda_s(self):
        small = run_on_machine(even_odd_boundary(50), "S").stats
        large = run_on_machine(even_odd_boundary(800), "S").stats
        assert large["max_pending_mediators"] == small["max_pending_mediators"]
        assert large["max_pending_size"] == small["max_pending_size"]

    def test_lambda_s_matches_the_fully_typed_control(self):
        boundary = run_on_machine(even_odd_boundary(300), "S").stats
        control = run_on_machine(even_odd_all_typed(300), "S").stats
        # Same asymptotics: both bounded by a small constant.
        assert boundary["max_pending_mediators"] <= control["max_pending_mediators"] + 3
        assert boundary["max_kont_depth"] <= control["max_kont_depth"] + 3

    def test_space_gap_grows_with_the_number_of_calls(self):
        n = 400
        stats_b = run_on_machine(even_odd_boundary(n), "B").stats
        stats_s = run_on_machine(even_odd_boundary(n), "S").stats
        assert stats_b["max_pending_mediators"] > n
        assert stats_s["max_pending_mediators"] <= 4

    def test_merges_happen_only_on_the_space_machine(self):
        stats_b = run_on_machine(even_odd_boundary(40), "B").stats
        stats_s = run_on_machine(even_odd_boundary(40), "S").stats
        assert stats_b["merges"] == 0
        assert stats_s["merges"] > 0

    def test_stats_are_reported_for_blame_outcomes_too(self):
        outcome = run_on_machine(untyped_library_bad_result(), "S")
        assert outcome.is_blame and outcome.stats["steps"] > 0


class TestMachineRegistry:
    def test_machines_exposes_all_three(self):
        assert set(MACHINES) == {"B", "C", "S"}
        assert MACHINES["B"] is MACHINE_B
        assert MACHINES["C"] is MACHINE_C
        assert MACHINES["S"] is MACHINE_S

    def test_unknown_calculus_rejected(self):
        with pytest.raises(ValueError):
            run_on_machine(const_int(1), "X")

    def test_python_value_of_non_value_outcome_raises(self):
        from repro.core.errors import EvaluationError

        outcome = run_on_machine(untyped_library_bad_result(), "B")
        with pytest.raises(EvaluationError):
            outcome.python_value()
