"""Tests for supporting infrastructure: environments, pretty printing,
outcome/report types, machine policies, and the equivalence checkers."""

from __future__ import annotations

import pytest

from repro.core.env import EMPTY_ENV, TypeEnv
from repro.core.errors import EvaluationError, TypeCheckError
from repro.core.labels import label
from repro.core.pretty import summary, term_to_str
from repro.core.terms import App, Blame, Cast, Coerce, Lam, Op, Pair, Var, const_bool, const_int
from repro.core.types import BOOL, DYN, INT, FunType, ProdType
from repro.lambda_c.coercions import FunCoercion, Identity, Inject, Project, Sequence
from repro.lambda_s.coercions import FailS, FunCo, IdBase, Injection, Projection
from repro.machine.policy import (
    BLAME_POLICY,
    COERCION_POLICY,
    SPACE_POLICY,
    CastMediator,
    MachineBlame,
)
from repro.machine.values import MClosure, MConst, MPair, MProxy, Environment
from repro.properties.calculi import LAMBDA_B, LAMBDA_C
from repro.properties.equivalence import Observation, kleene_equivalent, observations_equal

P = label("p")
Q = label("q")


class TestTypeEnv:
    def test_empty_env_has_no_bindings(self):
        assert len(EMPTY_ENV) == 0
        assert "x" not in EMPTY_ENV

    def test_extension_is_persistent(self):
        extended = EMPTY_ENV.extend("x", INT)
        assert "x" in extended and "x" not in EMPTY_ENV
        assert extended.lookup("x") == INT

    def test_shadowing(self):
        env = EMPTY_ENV.extend("x", INT).extend("x", BOOL)
        assert env.lookup("x") == BOOL

    def test_lookup_of_unbound_variable(self):
        with pytest.raises(TypeCheckError):
            EMPTY_ENV.lookup("nope")

    def test_equality_and_iteration(self):
        env = TypeEnv({"x": INT, "y": BOOL})
        assert env == TypeEnv({"y": BOOL, "x": INT})
        assert sorted(env) == ["x", "y"]


class TestPrettyPrinting:
    def test_nested_application(self):
        term = App(App(Var("f"), const_int(1)), const_bool(True))
        assert term_to_str(term) == "f 1 #t"

    def test_casts_and_coercions_render_distinctly(self):
        cast = Cast(const_int(1), INT, DYN, P)
        coerce = Coerce(const_int(1), Inject(INT))
        assert "=>" in term_to_str(cast)
        assert "<int!>" in term_to_str(coerce)

    def test_pairs_projections_and_ops(self):
        term = Op("+", (const_int(1), const_int(2)))
        assert term_to_str(term) == "+(1, 2)"
        assert term_to_str(Pair(const_int(1), const_int(2))) == "(1, 2)"

    def test_summary_truncates(self):
        term = Op("+", tuple(const_int(i) for i in range(2)))
        wide = summary(App(Lam("averyveryverylongname" * 5, INT, Var("x")), term), max_length=40)
        assert len(wide) <= 40 and wide.endswith("...")


class TestMachinePolicies:
    def test_cast_mediator_identity_application(self):
        assert BLAME_POLICY.apply(MConst(1, INT), CastMediator(INT, INT, P)) == MConst(1, INT)

    def test_cast_mediator_injection_creates_a_proxy(self):
        result = BLAME_POLICY.apply(MConst(1, INT), CastMediator(INT, DYN, P))
        assert isinstance(result, MProxy)

    def test_cast_mediator_projection_success_and_failure(self):
        injected = BLAME_POLICY.apply(MConst(1, INT), CastMediator(INT, DYN, P))
        assert BLAME_POLICY.apply(injected, CastMediator(DYN, INT, Q)) == MConst(1, INT)
        with pytest.raises(MachineBlame) as excinfo:
            BLAME_POLICY.apply(injected, CastMediator(DYN, BOOL, Q))
        assert excinfo.value.label == Q

    def test_cast_mediator_factoring_through_ground(self):
        fun_value = MClosure("x", INT, Var("x"), Environment.empty())
        injected = BLAME_POLICY.apply(fun_value, CastMediator(FunType(INT, INT), DYN, P))
        # Factored through ?→?: two proxy layers (function proxy, then injection).
        assert isinstance(injected, MProxy) and isinstance(injected.under, MProxy)

    def test_coercion_policy_sequence_and_fail(self):
        seq = Sequence(Inject(INT), Project(INT, P))
        assert COERCION_POLICY.apply(MConst(1, INT), seq) == MConst(1, INT)
        from repro.lambda_c.coercions import Fail

        with pytest.raises(MachineBlame):
            COERCION_POLICY.apply(MConst(1, INT), Fail(INT, P, BOOL))

    def test_space_policy_absorbs_into_existing_proxies(self):
        injected = SPACE_POLICY.apply(MConst(1, INT), Injection(IdBase(INT), INT))
        projected = SPACE_POLICY.apply(injected, Projection(INT, P, IdBase(INT)))
        assert projected == MConst(1, INT)
        with pytest.raises(MachineBlame):
            SPACE_POLICY.apply(injected, Projection(BOOL, Q, IdBase(BOOL)))

    def test_space_policy_failure(self):
        with pytest.raises(MachineBlame):
            SPACE_POLICY.apply(MConst(1, INT), FailS(INT, P, BOOL))

    def test_fun_parts_of_each_policy(self):
        cast = CastMediator(FunType(INT, INT), FunType(DYN, DYN), P)
        dom, cod = BLAME_POLICY.fun_parts(cast)
        assert dom.label == P.complement() and cod.label == P
        fun_c = FunCoercion(Project(INT, P), Inject(INT))
        assert COERCION_POLICY.fun_parts(fun_c) == (fun_c.dom, fun_c.cod)
        fun_s = FunCo(Projection(INT, P, IdBase(INT)), Injection(IdBase(INT), INT))
        assert SPACE_POLICY.fun_parts(fun_s) == (fun_s.dom, fun_s.cod)

    def test_only_the_space_policy_merges(self):
        assert not BLAME_POLICY.merges_pending_mediators
        assert not COERCION_POLICY.merges_pending_mediators
        assert SPACE_POLICY.merges_pending_mediators

    def test_projection_of_an_unwrapped_value_is_an_internal_error(self):
        with pytest.raises(EvaluationError):
            COERCION_POLICY.apply(MConst(1, INT), Project(INT, P))


class TestObservations:
    def test_value_observations_compare_after_erasure(self):
        left = Observation("value", const_int(1))
        right = Observation("value", const_int(1))
        assert observations_equal(left, right)
        assert not observations_equal(left, Observation("value", const_int(2)))

    def test_blame_observations_compare_labels(self):
        assert observations_equal(Observation("blame", P), Observation("blame", P))
        assert not observations_equal(Observation("blame", P), Observation("blame", Q))
        assert not observations_equal(Observation("blame", P), Observation("value", const_int(1)))

    def test_kleene_equivalence_distinguishes_different_programs(self):
        assert kleene_equivalent(LAMBDA_B, const_int(1), LAMBDA_B, const_int(1))
        assert not kleene_equivalent(LAMBDA_B, const_int(1), LAMBDA_B, const_int(2))
        assert not kleene_equivalent(LAMBDA_B, const_int(1), LAMBDA_B, Blame(P))

    def test_kleene_equivalence_across_calculi(self):
        term_b = Cast(Cast(const_int(1), INT, DYN, P), DYN, INT, Q)
        from repro.translate import b_to_c

        assert kleene_equivalent(LAMBDA_B, term_b, LAMBDA_C, b_to_c(term_b))


class TestReports:
    def test_reports_are_truthy_exactly_when_ok(self):
        from repro.properties.bisimulation import BisimulationReport
        from repro.properties.blame_safety import BlameSafetyReport
        from repro.properties.casts import FundamentalPropertyReport
        from repro.properties.type_safety import TypeSafetyReport

        assert TypeSafetyReport(True, 3)
        assert not TypeSafetyReport(False, 3, "boom")
        assert BisimulationReport(True, 1, 1)
        assert not BisimulationReport(False, 1, 1, "nope")
        assert BlameSafetyReport(True, 0)
        assert not FundamentalPropertyReport(False, "hypothesis fails")

    def test_machine_outcome_str(self):
        from repro.machine import run_on_machine

        assert "value" in str(run_on_machine(const_int(1), "B"))
