"""Tests for Proposition 3 (type safety) in all three calculi, via the checker."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.labels import label
from repro.core.terms import App, Cast, Coerce, Lam, Var, const_int
from repro.core.types import BOOL, DYN, INT
from repro.gen.programs import (
    even_odd_boundary,
    fib_boundary,
    pair_boundary_swap,
    twice_boundary,
    typed_loop_untyped_step,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.properties.calculi import CALCULI, LAMBDA_B, LAMBDA_C, LAMBDA_S
from repro.properties.type_safety import check_type_safety, check_unique_type
from repro.translate import b_to_c, b_to_s

from .strategies import lambda_b_programs

P = label("p")
Q = label("q")

WORKLOADS = [
    even_odd_boundary(5),
    typed_loop_untyped_step(3),
    fib_boundary(5),
    twice_boundary(3),
    untyped_library_bad_result(),
    untyped_client_bad_argument(),
    pair_boundary_swap(),
]


def _translate_for(calculus_name, term_b):
    if calculus_name == "B":
        return term_b
    if calculus_name == "C":
        return b_to_c(term_b)
    return b_to_s(term_b)


class TestProposition3:
    @given(lambda_b_programs())
    def test_lambda_b(self, program):
        term, _ = program
        report = check_type_safety(LAMBDA_B, term)
        assert report.ok, report.reason

    @given(lambda_b_programs())
    def test_lambda_c(self, program):
        term, _ = program
        report = check_type_safety(LAMBDA_C, b_to_c(term))
        assert report.ok, report.reason

    @given(lambda_b_programs())
    def test_lambda_s(self, program):
        term, _ = program
        report = check_type_safety(LAMBDA_S, b_to_s(term))
        assert report.ok, report.reason

    @pytest.mark.parametrize("calculus_name", ["B", "C", "S"])
    def test_workloads(self, calculus_name):
        calculus = CALCULI[calculus_name]
        for program in WORKLOADS:
            report = check_type_safety(calculus, _translate_for(calculus_name, program), fuel=3_000)
            assert report.ok, (calculus_name, report.reason)

    def test_ill_typed_terms_are_reported(self):
        report = check_type_safety(LAMBDA_B, App(const_int(1), const_int(2)))
        assert not report.ok
        assert "type check" in report.reason

    def test_blame_outcomes_count_as_safe(self):
        term = Cast(Cast(const_int(1), INT, DYN, P), DYN, BOOL, Q)
        assert check_type_safety(LAMBDA_B, term).ok

    @given(lambda_b_programs())
    def test_unique_typing(self, program):
        term, _ = program
        assert check_unique_type(LAMBDA_B, term)
