"""Tests for the batch runner (:mod:`repro.batch`) and ``repro-gradual batch``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.batch import aggregate_results, discover_programs, run_batch
from repro.cli import main

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
BLAME = "(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n"
SPIN = "(define (spin [n : int]) : int (spin n))\n(spin 0)\n"
ILL_TYPED = "(+ 1 #t)\n"


@pytest.fixture
def corpus(tmp_path: Path) -> Path:
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "a_square.grad").write_text(SQUARE)
    (root / "b_blame.grad").write_text(BLAME)
    (root / "c_spin.grad").write_text(SPIN)
    return root


class TestDiscovery:
    def test_directory_is_sorted_and_recursive(self, corpus):
        nested = corpus / "nested"
        nested.mkdir()
        (nested / "d_inner.grad").write_text(SQUARE)
        names = [p.name for p in discover_programs([corpus])]
        assert names == ["a_square.grad", "b_blame.grad", "c_spin.grad", "d_inner.grad"]

    def test_manifest_with_comments_and_relative_paths(self, corpus, tmp_path):
        manifest = tmp_path / "shard.txt"
        manifest.write_text(
            "# the shard's programs\n"
            "corpus/b_blame.grad\n"
            "\n"
            "corpus/a_square.grad\n"
        )
        names = [p.name for p in discover_programs([manifest])]
        assert names == ["b_blame.grad", "a_square.grad"]

    def test_duplicates_keep_first_occurrence(self, corpus):
        programs = discover_programs([corpus / "a_square.grad", corpus])
        assert [p.name for p in programs] == [
            "a_square.grad", "b_blame.grad", "c_spin.grad",
        ]

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_programs([tmp_path / "absent.txt"])


class TestRunBatch:
    def test_inline_outcomes_and_aggregate(self, corpus, tmp_path):
        streamed: list[dict] = []
        results, aggregate = run_batch(
            [corpus], workers=1, fuel=5_000,
            cache_dir=str(tmp_path / "cache"), on_result=streamed.append,
        )
        assert streamed == results
        by_name = {Path(r["program"]).name: r for r in results}
        assert by_name["a_square.grad"]["kind"] == "value"
        assert by_name["a_square.grad"]["value"] == 36
        assert by_name["a_square.grad"]["type"] == "int"
        assert by_name["b_blame.grad"]["kind"] == "blame"
        assert "ascription" in by_name["b_blame.grad"]["blame"]
        assert by_name["c_spin.grad"]["kind"] == "timeout"
        assert by_name["c_spin.grad"]["steps"] == 5_000
        assert aggregate["programs"] == 3
        assert aggregate["outcomes"] == {"value": 1, "blame": 1, "timeout": 1, "error": 0}
        assert aggregate["cache"]["miss"] == 3
        assert aggregate["steps_total"] > 5_000
        assert aggregate["workers"] == 1

    def test_second_run_hits_the_cache(self, corpus, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_batch([corpus], fuel=5_000, cache_dir=cache_dir)
        _, aggregate = run_batch([corpus], fuel=5_000, cache_dir=cache_dir)
        assert aggregate["cache"]["hit"] == 3
        assert aggregate["cache"]["miss"] == 0

    def test_front_end_errors_become_error_results(self, corpus, tmp_path):
        (corpus / "d_bad.grad").write_text(ILL_TYPED)
        results, aggregate = run_batch([corpus], fuel=5_000,
                                       cache_dir=str(tmp_path / "cache"))
        by_name = {Path(r["program"]).name: r for r in results}
        assert by_name["d_bad.grad"]["kind"] == "error"
        assert "int" in by_name["d_bad.grad"]["error"]
        assert aggregate["outcomes"]["error"] == 1

    def test_workers_agree_with_inline_execution(self, corpus, tmp_path):
        inline, _ = run_batch([corpus], workers=1, fuel=5_000,
                              cache_dir=str(tmp_path / "cache"))
        pooled, aggregate = run_batch([corpus], workers=2, fuel=5_000,
                                      cache_dir=str(tmp_path / "cache"))
        key = lambda r: r["program"]  # noqa: E731 - tiny sort key
        for a, b in zip(sorted(inline, key=key), sorted(pooled, key=key)):
            assert a["program"] == b["program"]
            assert a["kind"] == b["kind"]
            assert a.get("value") == b.get("value")
            assert a.get("blame") == b.get("blame")
            assert a["steps"] == b["steps"]
            assert a["max_pending_mediators"] == b["max_pending_mediators"]
        assert aggregate["workers"] == 2

    def test_killed_worker_yields_worker_lost_record(self, corpus, tmp_path):
        """A worker SIGKILLed mid-corpus must not lose its in-flight record
        (or hang the run): past the retry budget the program is reported as
        an ``error`` with ``"reason": "worker-lost"`` and the shard stats
        count it."""
        results, aggregate = run_batch(
            [corpus], workers=2, fuel=5_000, cache_dir=str(tmp_path / "cache"),
            faults="worker_kill:1.0",
        )
        assert len(results) == 3  # every program has exactly one record
        for result in results:
            assert result["kind"] == "error"
            assert result["reason"] == "worker-lost"
        assert aggregate["outcomes"]["error"] == 3

    def test_killed_worker_is_retried_transparently(self, corpus, tmp_path):
        """A kill scoped to one dispatch: the retry succeeds and the corpus
        result is indistinguishable from an undisturbed run."""
        inline, _ = run_batch([corpus], workers=1, fuel=5_000,
                              cache_dir=str(tmp_path / "cache"))
        chaotic, aggregate = run_batch(
            [corpus], workers=2, fuel=5_000, cache_dir=str(tmp_path / "cache"),
            faults="worker_kill:1.0:1",
        )
        key = lambda r: r["program"]  # noqa: E731 - tiny sort key
        for a, b in zip(sorted(inline, key=key), sorted(chaotic, key=key)):
            assert (a["program"], a["kind"]) == (b["program"], b["kind"])
            assert a.get("value") == b.get("value")
            assert a.get("blame") == b.get("blame")
        assert aggregate["outcomes"]["error"] == 0
        assert sum(r.get("attempts", 1) for r in chaotic) == len(chaotic) + 1

    def test_faults_environment_reaches_the_pool(self, corpus, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_GRADUAL_FAULTS", "worker_kill:1.0")
        monkeypatch.setenv("REPRO_GRADUAL_FAULTS_SEED", "20150613")
        results, _ = run_batch([corpus], workers=2, fuel=5_000,
                               cache_dir=str(tmp_path / "cache"))
        assert all(r["reason"] == "worker-lost" for r in results)

    def test_results_are_json_serializable(self, corpus, tmp_path):
        results, aggregate = run_batch([corpus], fuel=5_000,
                                       cache_dir=str(tmp_path / "cache"))
        for result in results:
            json.dumps(result)
        json.dumps(aggregate)

    def test_aggregate_of_empty_corpus(self):
        aggregate = aggregate_results([])
        assert aggregate["programs"] == 0
        assert aggregate["outcomes"]["value"] == 0


class TestBatchCommand:
    def _lines(self, capsys) -> list[dict]:
        return [json.loads(line) for line in capsys.readouterr().out.splitlines()]

    def test_all_values_exit_zero(self, tmp_path, capsys):
        root = tmp_path / "ok"
        root.mkdir()
        (root / "one.grad").write_text(SQUARE)
        (root / "two.grad").write_text(SQUARE.replace("6", "7"))
        assert main(["batch", str(root)]) == 0
        lines = self._lines(capsys)
        assert len(lines) == 3  # two programs + the aggregate
        assert lines[-1]["aggregate"]["outcomes"]["value"] == 2

    def test_blame_and_timeout_and_error_exit_codes(self, tmp_path, capsys):
        root = tmp_path / "mixed"
        root.mkdir()
        (root / "one.grad").write_text(SQUARE)
        (root / "two.grad").write_text(BLAME)
        assert main(["batch", str(root)]) == 1
        (root / "three.grad").write_text(SPIN)
        assert main(["batch", str(root), "--fuel", "5000"]) == 3
        (root / "four.grad").write_text(ILL_TYPED)
        assert main(["batch", str(root), "--fuel", "5000"]) == 2
        lines = self._lines(capsys)
        assert lines[-1]["aggregate"]["outcomes"] == {
            "value": 1, "blame": 1, "timeout": 1, "error": 1,
        }

    def test_streams_one_json_line_per_program(self, tmp_path, capsys):
        root = tmp_path / "ok"
        root.mkdir()
        (root / "one.grad").write_text(SQUARE)
        assert main(["batch", str(root), "--workers", "1", "-O", "0",
                     "--mediator", "threesome", "--no-cache"]) == 0
        lines = self._lines(capsys)
        assert Path(lines[0]["program"]).name == "one.grad"
        assert lines[0]["kind"] == "value"
        assert lines[0]["cache"] == "off"

    def test_missing_path_is_a_static_error(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "absent.txt")]) == 2
        assert "error" in capsys.readouterr().err
