"""Tests for |·|CS (Figure 6), the inclusion |·|SC, and Proposition 15."""

from __future__ import annotations

from hypothesis import given

from repro.core.labels import label
from repro.core.terms import App, Cast, Coerce, Lam, Var, const_int
from repro.core.types import BOOL, DYN, GROUND_FUN, GROUND_PROD, INT, FunType, ProdType, types_equal
from repro.lambda_c.coercions import (
    Fail,
    FunCoercion,
    Identity,
    Inject,
    ProdCoercion,
    Project,
    Sequence,
)
from repro.lambda_c.safety import term_safe_for as safe_c
from repro.lambda_c.typecheck import type_of as type_c
from repro.lambda_s.coercions import (
    ID_DYN,
    FailS,
    FunCo,
    IdBase,
    Injection,
    ProdCo,
    Projection,
    identity_for,
)
from repro.lambda_s.safety import term_safe_for as safe_s
from repro.lambda_s.typecheck import type_of as type_s
from repro.properties.blame_safety import labels_in_term
from repro.translate.b_to_c import term_to_lambda_c
from repro.translate.c_to_s import coercion_to_space, term_to_lambda_s
from repro.translate.s_to_c import space_to_coercion, term_to_lambda_c as s_back_to_c

from .strategies import lambda_b_programs, lambda_c_coercions, space_coercions

P = label("p")
Q = label("q")


class TestCoercionNormalisation:
    def test_identities(self):
        assert coercion_to_space(Identity(DYN)) == ID_DYN
        assert coercion_to_space(Identity(INT)) == IdBase(INT)
        assert coercion_to_space(Identity(FunType(INT, DYN))) == FunCo(IdBase(INT), ID_DYN)
        assert coercion_to_space(Identity(ProdType(INT, BOOL))) == ProdCo(IdBase(INT), IdBase(BOOL))

    def test_projection_gains_an_identity_body(self):
        assert coercion_to_space(Project(INT, P)) == Projection(INT, P, IdBase(INT))
        assert coercion_to_space(Project(GROUND_FUN, P)) == Projection(
            GROUND_FUN, P, FunCo(ID_DYN, ID_DYN)
        )

    def test_injection_gains_an_identity_body(self):
        assert coercion_to_space(Inject(INT)) == Injection(IdBase(INT), INT)
        assert coercion_to_space(Inject(GROUND_PROD)) == Injection(
            ProdCo(ID_DYN, ID_DYN), GROUND_PROD
        )

    def test_structural_cases(self):
        fun = FunCoercion(Project(INT, P), Inject(INT))
        assert coercion_to_space(fun) == FunCo(
            Projection(INT, P, IdBase(INT)), Injection(IdBase(INT), INT)
        )
        prod = ProdCoercion(Identity(INT), Inject(BOOL))
        assert coercion_to_space(prod) == ProdCo(IdBase(INT), Injection(IdBase(BOOL), BOOL))

    def test_fail_is_preserved(self):
        assert coercion_to_space(Fail(INT, P, BOOL)) == FailS(INT, P, BOOL)

    def test_composition_becomes_sharp(self):
        round_trip = Sequence(Inject(INT), Project(INT, P))
        assert coercion_to_space(round_trip) == IdBase(INT)
        failing = Sequence(Inject(INT), Project(BOOL, Q))
        assert coercion_to_space(failing) == FailS(INT, Q, BOOL)

    def test_long_compositions_collapse(self):
        chain = Sequence(
            Sequence(Inject(INT), Project(INT, P)),
            Sequence(Inject(INT), Project(INT, Q)),
        )
        assert coercion_to_space(chain) == IdBase(INT)

    def test_normalisation_is_idempotent_through_the_inclusion(self):
        fun = FunCoercion(Project(INT, P), Inject(INT))
        canonical = coercion_to_space(fun)
        assert coercion_to_space(space_to_coercion(canonical)) == canonical

    @given(lambda_c_coercions())
    def test_normal_forms_type_like_the_original(self, generated):
        from repro.lambda_s.coercions import check_space_coercion
        from repro.core.types import UnknownType

        coercion, source, target = generated
        canonical = coercion_to_space(coercion)
        result = check_space_coercion(canonical, source)
        assert isinstance(result, UnknownType) or types_equal(result, target)

    @given(lambda_c_coercions())
    def test_normal_form_labels_are_a_subset_of_the_original(self, generated):
        """Normalisation may drop labels (cancelled round trips) but never invents them."""
        from repro.lambda_c.coercions import labels_of as labels_c
        from repro.lambda_s.coercions import labels_of as labels_s

        coercion, _, _ = generated
        assert labels_s(coercion_to_space(coercion)) <= labels_c(coercion)

    @given(space_coercions())
    def test_round_trip_from_canonical_form_is_the_identity(self, generated):
        canonical, _, _ = generated
        assert coercion_to_space(space_to_coercion(canonical)) == canonical

    @given(lambda_c_coercions())
    def test_height_grows_by_at_most_one_under_normalisation(self, generated):
        """Normalisation expands G! / G?p at higher-order ground types into
        ``id_G ; G!`` / ``G?p ; id_G`` whose identity body has height 2, so the
        height of the canonical form exceeds the original by at most one."""
        from repro.lambda_c.coercions import height as height_c
        from repro.lambda_s.coercions import height as height_s

        coercion, _, _ = generated
        assert height_s(coercion_to_space(coercion)) <= height_c(coercion) + 1


class TestTermTranslation:
    def test_terms_translate_homomorphically(self):
        term = App(Lam("x", DYN, Var("x")), Coerce(const_int(1), Inject(INT)))
        translated = term_to_lambda_s(term)
        assert translated == App(
            Lam("x", DYN, Var("x")), Coerce(const_int(1), Injection(IdBase(INT), INT))
        )

    def test_casts_rejected(self):
        import pytest
        from repro.core.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            term_to_lambda_s(Cast(const_int(1), INT, DYN, P))

    @given(lambda_b_programs())
    def test_proposition_15_type_preservation(self, program):
        term_b, ty = program
        term_c = term_to_lambda_c(term_b)
        term_s = term_to_lambda_s(term_c)
        assert types_equal(type_s(term_s), type_c(term_c))
        assert types_equal(type_s(term_s), ty)

    @given(lambda_b_programs())
    def test_proposition_15_blame_safety_preservation(self, program):
        term_b, _ = program
        term_c = term_to_lambda_c(term_b)
        term_s = term_to_lambda_s(term_c)
        for q in labels_in_term(term_c):
            if safe_c(term_c, q):
                assert safe_s(term_s, q)

    @given(lambda_b_programs())
    def test_inclusion_back_into_lambda_c_is_well_typed(self, program):
        term_b, ty = program
        term_s = term_to_lambda_s(term_to_lambda_c(term_b))
        back = s_back_to_c(term_s)
        assert types_equal(type_c(back), ty)
