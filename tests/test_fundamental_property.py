"""Tests for the Fundamental Property of Casts (Section 5.2, Lemmas 20 and 21)."""

from __future__ import annotations

import itertools
import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import label
from repro.core.subtyping import meet, subtype_naive
from repro.core.terms import Lam, Op, Var, const_int
from repro.core.types import BOOL, DYN, INT, FunType, all_types, compatible
from repro.properties.casts import (
    applicable,
    candidate_mediating_types,
    check_lemma20,
    check_lemma21,
)
from repro.gen.terms_gen import TermGenerator

P = label("p")

SMALL_TYPES = all_types(2)
I2I = FunType(INT, INT)


class TestHypothesis:
    def test_applicable_requires_compatibility_and_the_meet_condition(self):
        assert applicable(INT, DYN, INT)
        assert applicable(I2I, DYN, FunType(DYN, INT))
        assert not applicable(INT, BOOL, INT)      # int and bool are incompatible
        assert not applicable(INT, DYN, BOOL)      # int & ? = int is not <:n bool

    def test_candidate_mediating_types(self):
        candidates = candidate_mediating_types(INT, DYN, SMALL_TYPES)
        assert INT in candidates and DYN in candidates
        assert BOOL not in candidates

    def test_the_meet_itself_is_always_a_candidate_when_bottom_free(self):
        for a, b in itertools.product(SMALL_TYPES, repeat=2):
            if not compatible(a, b):
                continue
            lower = meet(a, b)
            from repro.core.subtyping import contains_bottom

            if contains_bottom(lower):
                continue
            assert applicable(a, b, lower)


class TestLemma20:
    def test_exhaustive_over_small_types(self):
        """|A ⇒p B|BS  =  |A ⇒p C|BS # |C ⇒p B|BS  whenever A & B <:n C."""
        checked = 0
        for a, b, c in itertools.product(SMALL_TYPES, repeat=3):
            if not applicable(a, b, c):
                continue
            report = check_lemma20(a, P, b, c)
            assert report.ok, (a, b, c, report.reason)
            checked += 1
        assert checked > 100

    def test_through_the_dynamic_type(self):
        assert check_lemma20(INT, P, INT, DYN).ok
        assert check_lemma20(I2I, P, FunType(DYN, INT), DYN).ok

    def test_fails_when_the_hypothesis_fails(self):
        report = check_lemma20(INT, P, DYN, BOOL)
        assert not report.ok

    def test_counterexample_without_the_meet_condition(self):
        """Dropping the hypothesis breaks the identity: going through an
        unrelated ground type inserts a failure coercion."""
        from repro.lambda_s.coercions import compose
        from repro.translate.b_to_s import cast_to_space

        direct = cast_to_space(INT, P, DYN)
        through_bool = compose(cast_to_space(INT, P, DYN), cast_to_space(DYN, P, BOOL))
        assert direct != through_bool


class TestLemma21:
    def test_first_order_instances(self):
        subject = const_int(7)
        for b, c in [(DYN, INT), (DYN, DYN), (INT, INT)]:
            report = check_lemma21(subject, INT, P, b, c, probe=False)
            assert report.ok, report.reason

    def test_higher_order_instance(self):
        double = Lam("x", INT, Op("*", (Var("x"), const_int(2))))
        report = check_lemma21(double, I2I, P, DYN, FunType(DYN, INT))
        assert report.ok, report.reason

    def test_rejects_inapplicable_triples(self):
        assert not check_lemma21(const_int(1), INT, P, DYN, BOOL).ok

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        generator = TermGenerator(rng, max_depth=2)
        # Draw a compatible triple satisfying the hypothesis.
        for _ in range(20):
            a = rng.choice(SMALL_TYPES)
            b = rng.choice([t for t in SMALL_TYPES if compatible(a, t)])
            candidates = candidate_mediating_types(a, b, SMALL_TYPES)
            if not candidates:
                continue
            c = rng.choice(candidates)
            subject = generator.term(a)
            report = check_lemma21(subject, a, P, b, c, probe=False, fuel=5_000)
            assert report.ok, (a, b, c, report.reason)
            return
