"""Tests for serialized ``.gradb`` bytecode images and the compile cache.

The contract under test: an image round-trips a compiled program exactly —
byte-identical disassembly, oracle-identical behavior (values, blame
labels, timeouts, step counts, and the space profile) under both mediator
backends at every optimizer level — and the content-addressed cache built
on top of it is invisible except for speed: a hit, a miss, and a recovered
corrupt entry all produce the same ``RunResult``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.compiler import (
    FORMAT_VERSION,
    GRADB_MAGIC,
    ImageError,
    cache_path,
    cached_compile,
    compile_term,
    deserialize_image,
    disassemble,
    disassemble_image,
    load_image,
    parse_disassembly,
    run_code,
    save_image,
    serialize_image,
    source_fingerprint,
)
from repro.compiler.bytecode import PUSH_CONST, CodeObject, ConstantPool
from repro.lambda_s.coercions import is_interned_space
from repro.machine import MEDIATORS
from repro.surface.interp import compile_source, run_source
from repro.threesomes.runtime import is_interned_threesome

from .strategies import lambda_b_programs

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "programs").glob("*.grad")
)

SQUARE = "(define (square [x : int]) : int (* x x))\n(square (: 6 ?))\n"
BLAME = "(define lib : ? (lambda (x) #t))\n(+ 1 ((: lib (-> int int)) 3))\n"
SPIN = "(define (spin [n : int]) : int (spin n))\n(spin 0)\n"


def _compile(source: str, mediator: str = "coercion", opt_level: int = 2):
    term, ty = compile_source(source)
    return compile_term(term, mediator=mediator, opt_level=opt_level), ty


def _assert_same_outcome(a, b) -> None:
    assert a.kind == b.kind
    if a.is_value:
        assert a.python_value() == b.python_value()
    elif a.is_blame:
        assert a.label == b.label
    assert a.stats == b.stats


def _recrc(data: bytes) -> bytes:
    """Recompute the trailing checksum after a deliberate patch."""
    body = data[:-4]
    return body + zlib.crc32(body).to_bytes(4, "big")


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("mediator", MEDIATORS)
    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_examples_round_trip_exactly(self, mediator, opt_level):
        for example in EXAMPLES:
            source = example.read_text()
            code, ty = _compile(source, mediator, opt_level)
            image = deserialize_image(
                serialize_image(code, source_hash=source_fingerprint(source), static_type=ty)
            )
            # Byte-identical disassembly: instructions, pools, names.
            assert disassemble(image.code) == disassemble(code)
            # Oracle-identical behavior, including the space profile.
            _assert_same_outcome(run_code(code), run_code(image.code))
            assert image.info.format_version == FORMAT_VERSION
            assert image.info.mediator == mediator
            assert image.info.opt_level == opt_level
            assert image.info.static_type == ty
            assert image.info.source_hash == source_fingerprint(source)

    def test_loaded_pool_is_reinterned(self):
        code, ty = _compile(BLAME, "coercion", 2)
        image = deserialize_image(serialize_image(code))
        assert image.code.pool.coercions, "expected a mediator-carrying program"
        for entry in image.code.pool.coercions:
            assert is_interned_space(entry)

    def test_loaded_threesome_pool_is_reinterned(self):
        code, ty = _compile(BLAME, "threesome", 2)
        image = deserialize_image(serialize_image(code))
        assert image.code.pool.coercions, "expected a mediator-carrying program"
        for entry in image.code.pool.coercions:
            assert is_interned_threesome(entry)

    def test_huge_and_negative_integer_constants_round_trip(self):
        # Regression: the varint reader used to cap continuations at ~77
        # bits, so a valid program with a big literal serialized into an
        # image that could never be loaded (and the compile cache would
        # rewrite the entry on every "warm" run).
        from repro.core.terms import const_int

        for literal in (2**80, -(2**80), 2**400, -7, 0):
            code = compile_term(const_int(literal))
            image = deserialize_image(serialize_image(code))
            assert disassemble(image.code) == disassemble(code)
            assert run_code(image.code).python_value() == literal

    def test_caches_reallocated_only_at_o2(self):
        for opt_level, expect in ((0, False), (1, False), (2, True)):
            code, _ = _compile(SQUARE, "coercion", opt_level)
            image = deserialize_image(serialize_image(code))
            assert (image.code.caches is not None) == expect
            assert image.code.opt_level == opt_level

    def test_image_disassembly_round_trips_through_parser(self, tmp_path):
        code, ty = _compile(SQUARE)
        path = save_image(code, tmp_path / "square.gradb", static_type=ty)
        image = load_image(path)
        text = disassemble_image(image)
        assert f"; gradb image v{FORMAT_VERSION}" in text
        assert parse_disassembly(text) == parse_disassembly(disassemble(code))

    def test_fresh_process_reproduces_the_run(self, tmp_path):
        """The acceptance criterion's 'reloaded in a fresh process' half."""
        code, ty = _compile(SQUARE)
        path = save_image(code, tmp_path / "square.gradb", static_type=ty)
        in_process = run_code(code)
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", str(path), "--show-space"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert f"{in_process.python_value()!r} : {ty}" in proc.stdout
        assert f"steps={in_process.stats['steps']}" in proc.stdout


# ---------------------------------------------------------------------------
# Malformed images
# ---------------------------------------------------------------------------


class TestRejection:
    def _image_bytes(self) -> bytes:
        code, ty = _compile(SQUARE)
        return serialize_image(code, static_type=ty)

    def test_bad_magic(self):
        data = self._image_bytes()
        with pytest.raises(ImageError, match="magic"):
            deserialize_image(b"NOTANIMAGE" + data)

    def test_format_version_mismatch(self):
        data = self._image_bytes()
        assert data[len(GRADB_MAGIC)] == FORMAT_VERSION  # single-byte varint today
        patched = bytearray(data)
        patched[len(GRADB_MAGIC)] = FORMAT_VERSION + 1
        with pytest.raises(ImageError, match="version mismatch"):
            deserialize_image(bytes(patched))

    def test_opcode_fingerprint_mismatch(self):
        data = bytearray(self._image_bytes())
        offset = len(GRADB_MAGIC) + 1  # first fingerprint byte
        data[offset] ^= 0xFF
        with pytest.raises(ImageError, match="opcode-set mismatch"):
            deserialize_image(_recrc(bytes(data)))

    def test_truncation_at_every_section(self):
        data = self._image_bytes()
        for keep in (3, len(GRADB_MAGIC), 20, len(data) // 2, len(data) - 1):
            with pytest.raises(ImageError):
                deserialize_image(data[:keep])

    def test_corrupt_payload_fails_the_checksum(self):
        data = bytearray(self._image_bytes())
        data[len(data) // 2] ^= 0x55
        with pytest.raises(ImageError, match="checksum"):
            deserialize_image(bytes(data))

    def test_trailing_garbage_is_rejected(self):
        data = self._image_bytes()
        with pytest.raises(ImageError):
            deserialize_image(data + b"junk")

    def test_empty_and_non_image_files(self, tmp_path):
        empty = tmp_path / "empty.gradb"
        empty.write_bytes(b"")
        with pytest.raises(ImageError):
            load_image(empty)
        with pytest.raises(ImageError, match="cannot read"):
            load_image(tmp_path / "missing.gradb")

    def test_unknown_semantics_axis_is_rejected(self):
        # A checksum-valid image whose header names an enforcement semantics
        # this library does not know must fail on the axis, like the format
        # and opcode-set rejections above — not crash decoding the pool.
        data = self._image_bytes()
        needle = b"\x08coercion"  # varint length 8, then the semantics id
        assert data.count(needle) == 1
        patched = data.replace(needle, b"\x08wrapsome")
        with pytest.raises(ImageError, match="enforcement-semantics mismatch"):
            deserialize_image(_recrc(patched))

    def test_out_of_range_operand_is_rejected(self):
        # A checksum-valid image whose stream indexes outside its pool must
        # be caught by validation, not crash the VM mid-run.
        pool = ConstantPool()
        bogus = CodeObject("<main>", [(PUSH_CONST, 5)], pool, 0, 0, None, ())
        with pytest.raises(ImageError, match="out-of-range operand"):
            deserialize_image(serialize_image(bogus))


# ---------------------------------------------------------------------------
# The compile cache
# ---------------------------------------------------------------------------


class TestCompileCache:
    def test_miss_then_hit(self, tmp_path):
        cache_dir = tmp_path / "cache"
        term, ty = compile_source(SQUARE)
        first = cached_compile(term, static_type=ty, cache_dir=cache_dir)
        assert first.status == "miss"
        assert first.path.exists()
        second = cached_compile(term, static_type=ty, cache_dir=cache_dir)
        assert second.status == "hit"
        assert second.path == first.path
        assert disassemble(second.image.code) == disassemble(first.image.code)
        _assert_same_outcome(run_code(first.image.code), run_code(second.image.code))

    def test_key_separates_opt_level_and_mediator(self, tmp_path):
        term, ty = compile_source(SQUARE)
        paths = {
            cached_compile(term, static_type=ty, mediator=mediator,
                           opt_level=opt_level, cache_dir=tmp_path).path
            for mediator in MEDIATORS
            for opt_level in (0, 2)
        }
        assert len(paths) == 4

    def test_corrupt_entry_is_recovered(self, tmp_path):
        term, ty = compile_source(SQUARE)
        first = cached_compile(term, static_type=ty, cache_dir=tmp_path)
        # Truncate the stored entry, then corrupt it outright.
        first.path.write_bytes(first.path.read_bytes()[:-7])
        recovered = cached_compile(term, static_type=ty, cache_dir=tmp_path)
        assert recovered.status == "recovered"
        assert cached_compile(term, static_type=ty, cache_dir=tmp_path).status == "hit"
        first.path.write_bytes(b"\x00garbage\xff" * 5)
        assert cached_compile(term, static_type=ty, cache_dir=tmp_path).status == "recovered"
        _assert_same_outcome(
            run_code(recovered.image.code),
            run_code(compile_term(term)),
        )

    def test_run_source_hit_equals_miss(self, tmp_path):
        """Cache-hit and cache-miss runs are indistinguishable in RunResult."""
        for source in (SQUARE, BLAME):
            cold = run_source(source, engine="vm", cache=True, cache_dir=str(tmp_path))
            warm = run_source(source, engine="vm", cache=True, cache_dir=str(tmp_path))
            assert cold.kind == warm.kind
            assert cold.value == warm.value
            assert cold.blame_label == warm.blame_label
            assert str(cold.type) == str(warm.type)
            assert cold.steps == warm.steps
            assert cold.space_stats == warm.space_stats
        timeout = run_source(SPIN, engine="vm", cache=True, cache_dir=str(tmp_path),
                             fuel=5_000)
        assert timeout.is_timeout and timeout.steps == 5_000

    def test_warm_run_skips_the_front_end(self, tmp_path, monkeypatch):
        """A warm-cache run must not parse, elaborate, lower, or optimize."""
        run_source(SQUARE, engine="vm", cache=True, cache_dir=str(tmp_path))

        import repro.surface.interp as interp

        def explode(*_args, **_kwargs):  # pragma: no cover - the point is no call
            raise AssertionError("the warm path re-entered the front end")

        import repro.compiler.vm as vm

        monkeypatch.setattr(interp, "compile_source", explode)
        monkeypatch.setattr(vm, "compile_term", explode)
        warm = run_source(SQUARE, engine="vm", cache=True, cache_dir=str(tmp_path))
        assert warm.is_value and warm.value == 36

    def test_cache_respects_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GRADUAL_CACHE_DIR", str(tmp_path / "via-env"))
        result = run_source(SQUARE, engine="vm", cache=True)
        assert result.is_value
        stored = list((tmp_path / "via-env").rglob("*.gradb"))
        assert len(stored) == 1
        assert stored[0] == cache_path(source_fingerprint(SQUARE), 2, "coercion")


# ---------------------------------------------------------------------------
# The hypothesis property
# ---------------------------------------------------------------------------


class TestRoundTripProperty:
    @given(lambda_b_programs())
    @settings(max_examples=40, deadline=None)
    def test_save_load_run_agrees_with_in_memory_run(self, program):
        """compile → save → load → run agrees with the in-memory run on
        outcome, blame, steps, and space profile, under both mediators at
        -O0 and -O2."""
        term, ty = program
        for mediator in MEDIATORS:
            for opt_level in (0, 2):
                code = compile_term(term, mediator=mediator, opt_level=opt_level)
                data = serialize_image(code, static_type=ty)
                image = deserialize_image(data)
                assert disassemble(image.code) == disassemble(code), (mediator, opt_level)
                _assert_same_outcome(run_code(code), run_code(image.code))
