"""Experiment: the step-count relationships behind Propositions 11 and 16.

Proposition 11 says λB and λC run in *lockstep* — the step counts are equal,
program by program.  Proposition 16's bisimulation is not lockstep: one λC
step may correspond to zero or more λS steps and vice versa.  These
benchmarks measure the cost of checking the bisimulations on the workloads
and record the observed step counts, regenerating the "shape" the paper
describes: a ratio of exactly 1 for λB/λC, and a workload-dependent but
bounded ratio for λC/λS.
"""

from __future__ import annotations

import sys

import pytest

import harness

from repro.gen.programs import (
    even_odd_boundary,
    fib_boundary,
    twice_boundary,
    untyped_client_bad_argument,
    untyped_library_bad_result,
)
from repro.lambda_b.reduction import run as run_b
from repro.lambda_c.reduction import run as run_c
from repro.lambda_s.reduction import run as run_s
from repro.properties.bisimulation import (
    check_engine_oracle_all,
    check_lockstep_b_c,
    check_outcomes_c_s,
)
from repro.translate import b_to_c, b_to_s

WORKLOADS = {
    "even_odd_8": even_odd_boundary(8),
    "fib_6": fib_boundary(6),
    "twice_3": twice_boundary(3),
    "lib_blame": untyped_library_bad_result(),
    "client_blame": untyped_client_bad_argument(),
}


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("bisimulation", repeat)
    for name, program in sorted(WORKLOADS.items()):
        term_c = b_to_c(program)
        suite.measure(
            f"lockstep_b_c/{name}",
            lambda program=program: check_lockstep_b_c(program, 5_000),
            check=lambda report: report.ok,
            workload=name,
            steps_b=run_b(program, 100_000).steps,
            steps_c=run_c(term_c, 100_000).steps,
        )
        suite.measure(
            f"outcomes_c_s/{name}",
            lambda term_c=term_c: check_outcomes_c_s(term_c, 100_000),
            check=lambda report: report.ok,
            workload=name,
            steps_s=run_s(b_to_s(program), 200_000).steps,
        )
        suite.measure(
            f"engine_oracle/{name}",
            lambda program=program: check_engine_oracle_all(program),
            check=lambda report: report.ok,
            workload=name,
        )
    return suite


@pytest.mark.benchmark(group="lockstep-b-c")
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_lockstep_check(benchmark, name):
    program = WORKLOADS[name]
    report = benchmark(check_lockstep_b_c, program, 5_000)
    assert report.ok, report.reason
    steps_b = run_b(program, 100_000).steps
    steps_c = run_c(b_to_c(program), 100_000).steps
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["steps_b"] = steps_b
    benchmark.extra_info["steps_c"] = steps_c
    # Proposition 11: the two calculi take exactly the same number of steps.
    assert steps_b == steps_c


@pytest.mark.benchmark(group="bisimulation-c-s")
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_outcome_bisimulation_check(benchmark, name):
    program = WORKLOADS[name]
    term_c = b_to_c(program)
    report = benchmark(check_outcomes_c_s, term_c, 100_000)
    assert report.ok, report.reason
    steps_c = run_c(term_c, 200_000).steps
    steps_s = run_s(b_to_s(program), 200_000).steps
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["steps_c"] = steps_c
    benchmark.extra_info["steps_s"] = steps_s
    benchmark.extra_info["ratio_c_over_s"] = round(steps_c / max(steps_s, 1), 3)
    # Not lockstep, but the step counts stay within a small factor of each other.
    assert 0.2 <= steps_c / max(steps_s, 1) <= 5.0


if __name__ == "__main__":
    sys.exit(harness.main("bisimulation", build_suite))
