"""Experiment: threesome composition (§6.1) versus λS composition ``#``.

Siek & Wadler (2010)'s threesomes are "easy to compute, but hard to
understand"; λS's canonical coercions are both.  This benchmark compares the
two composition algorithms on the same work — long chains of boundary
crossings and random composable pairs — and asserts they produce the same
result (through the representation map), reproducing the equivalence the
paper argues in §6.1.
"""

from __future__ import annotations

import random
import sys

import pytest

import harness

from repro.core.labels import Label
from repro.core.types import DYN, INT
from repro.gen.coercions_gen import random_composable_space_pair
from repro.lambda_s.coercions import compose
from repro.threesomes import compose_labeled, labeled_of_coercion
from repro.translate.b_to_s import cast_to_space


def _boundary_chain(length: int):
    pieces = []
    for index in range(length):
        pieces.append(cast_to_space(INT, Label(f"in{index}"), DYN))
        pieces.append(cast_to_space(DYN, Label(f"out{index}"), INT))
    return pieces


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("threesomes", repeat)

    pieces = _boundary_chain(200)
    labeled_pieces = [labeled_of_coercion(piece) for piece in pieces]

    def fold_sharp():
        result = pieces[0]
        for piece in pieces[1:]:
            result = compose(result, piece)
        return labeled_of_coercion(result)

    def fold_threesomes():
        result = labeled_pieces[0]
        for piece in labeled_pieces[1:]:
            result = compose_labeled(result, piece)
        return result

    reference = fold_sharp()
    suite.measure("sharp/chain_200", fold_sharp, algorithm="sharp", chain_length=len(pieces))
    suite.measure("threesomes/chain_200", fold_threesomes,
                  check=lambda r: r == reference,
                  algorithm="threesomes", chain_length=len(pieces))

    rng = random.Random(20100117)
    pairs = [random_composable_space_pair(rng, length=3, depth=3) for _ in range(100)]
    labeled_pairs = [(labeled_of_coercion(s), labeled_of_coercion(t)) for s, t, *_ in pairs]

    def run_sharp():
        return [labeled_of_coercion(compose(s, t)) for s, t, *_ in pairs]

    def run_threesomes():
        return [compose_labeled(p, q) for p, q in labeled_pairs]

    reference_pairs = run_sharp()
    suite.measure("sharp/random_100", run_sharp, algorithm="sharp", pairs=len(pairs))
    suite.measure("threesomes/random_100", run_threesomes,
                  check=lambda r: r == reference_pairs,
                  algorithm="threesomes", pairs=len(pairs))
    return suite


@pytest.mark.benchmark(group="threesomes-vs-sharp-chain")
@pytest.mark.parametrize("algorithm", ["sharp", "threesomes"])
def test_chain_composition(benchmark, algorithm):
    pieces = _boundary_chain(200)
    labeled_pieces = [labeled_of_coercion(piece) for piece in pieces]

    def fold_sharp():
        result = pieces[0]
        for piece in pieces[1:]:
            result = compose(result, piece)
        return labeled_of_coercion(result)

    def fold_threesomes():
        result = labeled_pieces[0]
        for piece in labeled_pieces[1:]:
            result = compose_labeled(result, piece)
        return result

    result = benchmark(fold_sharp if algorithm == "sharp" else fold_threesomes)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["chain_length"] = len(pieces)
    # Both algorithms compute the same mediating representation.
    assert result == fold_sharp()


@pytest.mark.benchmark(group="threesomes-vs-sharp-random")
@pytest.mark.parametrize("algorithm", ["sharp", "threesomes"])
def test_random_pair_composition(benchmark, algorithm):
    rng = random.Random(20100117)
    pairs = [random_composable_space_pair(rng, length=3, depth=3) for _ in range(100)]
    labeled_pairs = [(labeled_of_coercion(s), labeled_of_coercion(t)) for s, t, *_ in pairs]

    def run_sharp():
        return [labeled_of_coercion(compose(s, t)) for s, t, *_ in pairs]

    def run_threesomes():
        return [compose_labeled(p, q) for p, q in labeled_pairs]

    results = benchmark(run_sharp if algorithm == "sharp" else run_threesomes)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["pairs"] = len(pairs)
    assert results == run_sharp()


if __name__ == "__main__":
    sys.exit(harness.main("threesomes", build_suite))
