"""Experiment: cost of the translations of Figures 4 and 6.

The translations are the compiler passes of a gradually typed language built
on these calculi: cast insertion produces λB, ``|·|BC`` compiles casts to
coercions, and ``|·|CS`` normalises them for the space-efficient back end.
These benchmarks measure each pass (and the surface front end) on the
workload programs, confirming the passes are linear-time in practice and
that normalisation shrinks long cast chains.
"""

from __future__ import annotations

import sys

import pytest

import harness

from repro.core.terms import count_casts, count_coercions, term_size
from repro.gen.programs import deep_cast_chain, even_odd_boundary, fib_boundary
from repro.surface.cast_insertion import elaborate_program
from repro.surface.parser import parse_program
from repro.translate import b_to_c, c_to_b, c_to_s

WORKLOADS = {
    "even_odd": even_odd_boundary(10),
    "fib": fib_boundary(5),
    "deep_chain": deep_cast_chain(200),
}

SURFACE_SOURCE = """
(define (even [n : int]) : bool
  (if (zero? n) #t (: (: (even (- n 1)) ?) bool)))
(even 50)
"""


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("translation", repeat)
    for name, term in sorted(WORKLOADS.items()):
        term_c = b_to_c(term)
        suite.measure(
            f"b_to_c/{name}", lambda term=term: b_to_c(term),
            check=lambda t: count_coercions(t) == count_casts(term),
            workload=name, casts=count_casts(term),
        )
        suite.measure(
            f"c_to_s/{name}", lambda term_c=term_c: c_to_s(term_c),
            workload=name,
            size_before=term_size(term_c), size_after=term_size(c_to_s(term_c)),
        )
        suite.measure(
            f"c_to_b/{name}", lambda term_c=term_c: c_to_b(term_c),
            workload=name,
        )

    def front_end():
        return elaborate_program(parse_program(SURFACE_SOURCE))

    suite.measure(
        "surface/parse_and_elaborate", front_end,
        check=lambda result: count_casts(result[0]) > 0,
        casts_inserted=count_casts(front_end()[0]),
    )
    return suite


@pytest.mark.benchmark(group="translate-b-to-c")
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_translate_b_to_c(benchmark, name):
    term = WORKLOADS[name]
    translated = benchmark(b_to_c, term)
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["casts"] = count_casts(term)
    benchmark.extra_info["coercions"] = count_coercions(translated)
    assert count_coercions(translated) == count_casts(term)


@pytest.mark.benchmark(group="translate-c-to-s")
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_translate_c_to_s(benchmark, name):
    term_c = b_to_c(WORKLOADS[name])
    translated = benchmark(c_to_s, term_c)
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["size_before"] = term_size(term_c)
    benchmark.extra_info["size_after"] = term_size(translated)


@pytest.mark.benchmark(group="translate-c-to-b")
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_translate_c_back_to_b(benchmark, name):
    term_c = b_to_c(WORKLOADS[name])
    translated = benchmark(c_to_b, term_c)
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["casts_after_round_trip"] = count_casts(translated)


@pytest.mark.benchmark(group="surface-front-end")
def test_parse_and_elaborate(benchmark):
    def front_end():
        program = parse_program(SURFACE_SOURCE)
        return elaborate_program(program)

    term, ty = benchmark(front_end)
    benchmark.extra_info["casts_inserted"] = count_casts(term)
    assert count_casts(term) > 0


if __name__ == "__main__":
    sys.exit(harness.main("translation", build_suite))
