"""Experiment: cost and height behaviour of the composition operator ``#`` (Figure 5).

The paper's pitch for λS is that composition of canonical coercions is a
ten-line *structural recursion*: total, easy to validate, and cheap.  These
benchmarks measure:

* the cost of composing long chains of boundary coercions (the operation the
  λS machine performs on every merge), and that the result stays at constant
  size — this is the algorithmic heart of space efficiency;
* the cost of composing deep higher-order coercions, and that composition
  preserves height (Proposition 14);
* composition via the canonicalising translation ``|·|CS`` applied to a λC
  sequence — i.e. what a naive implementation that re-normalises would pay —
  as the baseline for the incremental ``#``.
"""

from __future__ import annotations

import random
import sys

import pytest

import harness

from repro.core.labels import Label
from repro.core.types import DYN, INT, FunType
from repro.gen.coercions_gen import random_composable_space_pair
from repro.lambda_c.coercions import Sequence
from repro.lambda_s.coercions import compose, compose_memo, height, size
from repro.translate.b_to_s import cast_to_space
from repro.translate.c_to_s import coercion_to_space
from repro.translate.s_to_c import space_to_coercion


def _boundary_chain(length: int):
    """The coercions a boundary-crossing loop produces: in, out, in, out, ..."""
    pieces = []
    for index in range(length):
        pieces.append(cast_to_space(INT, Label(f"in{index}"), DYN))
        pieces.append(cast_to_space(DYN, Label(f"out{index}"), INT))
    return pieces


def _higher_order_chain(depth: int, length: int):
    ty: object = INT
    for _ in range(depth):
        ty = FunType(ty, DYN)
    pieces = []
    for index in range(length):
        pieces.append(cast_to_space(ty, Label(f"up{index}"), DYN))
        pieces.append(cast_to_space(DYN, Label(f"down{index}"), ty))
    return pieces


# ---------------------------------------------------------------------------
# Standalone harness suite: memoised # versus raw #, and the merge streams
# the machine actually performs.  `python benchmarks/bench_composition.py --json`
# writes BENCH_composition.json.
# ---------------------------------------------------------------------------


def _merge_stream(iterations: int, ty=INT):
    """The exact pending-coercion merge sequence of a boundary tail loop.

    A loop that crosses the same boundary every iteration merges the *same*
    pair of coercions over and over — the case the memoised ``#`` turns into
    a dictionary hit.
    """
    into = cast_to_space(ty, Label("loop-in"), DYN)
    outof = cast_to_space(DYN, Label("loop-out"), ty)
    return [into if i % 2 == 0 else outof for i in range(iterations)]


def _higher_order_type(depth: int):
    ty = INT
    for _ in range(depth):
        ty = FunType(ty, DYN)
    return ty


def build_suite(repeat: int, seed: int = harness.DEFAULT_SEED) -> harness.Suite:
    suite = harness.Suite("composition", repeat)
    # The generated pairs are part of the measurement: a fixed --seed keeps
    # BENCH_composition.json comparable run to run.
    rng = random.Random(seed)

    # (1) The machine's hot path: a tail loop's merge stream.
    for iterations in (1_000, 10_000):
        stream = _merge_stream(iterations)

        def fold(composer, stream=stream):
            result = stream[0]
            for piece in stream[1:]:
                result = composer(result, piece)
            return result

        raw = suite.measure(
            f"raw/merge_stream_{iterations}",
            lambda fold=fold: fold(compose),
            check=lambda r: size(r) <= 2,
            variant="raw", iterations=iterations,
        )
        memo = suite.measure(
            f"memo/merge_stream_{iterations}",
            lambda fold=fold: fold(compose_memo),
            check=lambda r: size(r) <= 2,
            variant="memoized", iterations=iterations,
        )
        suite.record(
            f"speedup/merge_stream_{iterations}",
            speedup=round(raw.best_s / memo.best_s, 2),
            composition_heavy=True,
            workload=f"merge_stream_{iterations}",
        )

    # (2) The same merge stream at a higher-order boundary type: raw # must
    # recurse through the function coercion on every merge, the memoised #
    # answers from the cache.
    for depth in (3, 5):
        stream = _merge_stream(4_000, ty=_higher_order_type(depth))

        def fold(composer, stream=stream):
            result = stream[0]
            for piece in stream[1:]:
                result = composer(result, piece)
            return result

        raw = suite.measure(
            f"raw/ho_merge_stream_d{depth}",
            lambda fold=fold: fold(compose),
            variant="raw", iterations=4_000, type_depth=depth,
        )
        memo = suite.measure(
            f"memo/ho_merge_stream_d{depth}",
            lambda fold=fold: fold(compose_memo),
            check=lambda r, stream=stream: height(r) <= max(height(p) for p in stream),
            variant="memoized", iterations=4_000, type_depth=depth,
        )
        suite.record(
            f"speedup/ho_merge_stream_d{depth}",
            speedup=round(raw.best_s / memo.best_s, 2),
            composition_heavy=True,
            workload=f"ho_merge_stream_d{depth}",
        )

    # (3) A replayed batch of random composable pairs (higher-order shapes).
    pairs = [random_composable_space_pair(rng, length=3, depth=3) for _ in range(100)]
    replays = 20

    def batch(composer):
        out = None
        for _ in range(replays):
            out = [composer(s, t) for s, t, *_ in pairs]
        return out

    raw = suite.measure(
        "raw/random_pairs_x20",
        lambda: batch(compose),
        variant="raw", pairs=len(pairs), replays=replays,
    )
    memo = suite.measure(
        "memo/random_pairs_x20",
        lambda: batch(compose_memo),
        check=lambda out: out == [compose(s, t) for s, t, *_ in pairs],
        variant="memoized", pairs=len(pairs), replays=replays,
    )
    suite.record(
        "speedup/random_pairs_x20",
        speedup=round(raw.best_s / memo.best_s, 2),
        composition_heavy=True,
        workload="random_pairs_x20",
    )
    return suite


@pytest.mark.benchmark(group="compose-first-order-chain")
@pytest.mark.parametrize("length", [10, 100, 1000])
def test_compose_boundary_chain(benchmark, length):
    pieces = _boundary_chain(length)

    def fold():
        result = pieces[0]
        for piece in pieces[1:]:
            result = compose(result, piece)
        return result

    result = benchmark(fold)
    benchmark.extra_info["chain_length"] = 2 * length
    benchmark.extra_info["result_size"] = size(result)
    # The whole chain collapses to a constant-size canonical coercion.
    assert size(result) <= 2


@pytest.mark.benchmark(group="compose-higher-order-chain")
@pytest.mark.parametrize("depth", [1, 3, 5])
def test_compose_higher_order_chain(benchmark, depth):
    pieces = _higher_order_chain(depth, 50)

    def fold():
        result = pieces[0]
        for piece in pieces[1:]:
            result = compose(result, piece)
        return result

    result = benchmark(fold)
    max_height = max(height(piece) for piece in pieces)
    benchmark.extra_info["type_depth"] = depth
    benchmark.extra_info["result_height"] = height(result)
    benchmark.extra_info["max_input_height"] = max_height
    # Proposition 14: composition never increases height.
    assert height(result) <= max_height


@pytest.mark.benchmark(group="compose-vs-renormalise")
@pytest.mark.parametrize("approach", ["sharp", "renormalise"])
def test_sharp_versus_renormalising_baseline(benchmark, approach):
    """``#`` on canonical forms versus re-normalising the λC composition.

    The renormalising baseline is what an implementation without a dedicated
    composition operator would do (cf. Herman et al.'s normal forms); the
    incremental ``#`` should be at least as fast and is what λS specifies.
    """
    rng = random.Random(20150613)
    pairs = [random_composable_space_pair(rng, length=3, depth=3) for _ in range(50)]

    def run_sharp():
        return [compose(s, t) for s, t, *_ in pairs]

    def run_renormalise():
        return [
            coercion_to_space(Sequence(space_to_coercion(s), space_to_coercion(t)))
            for s, t, *_ in pairs
        ]

    results = benchmark(run_sharp if approach == "sharp" else run_renormalise)
    benchmark.extra_info["pairs"] = len(pairs)
    # Both approaches agree (the correctness claim behind Figure 6).
    reference = [compose(s, t) for s, t, *_ in pairs]
    assert results == reference


@pytest.mark.benchmark(group="compose-random")
def test_compose_random_pairs_throughput(benchmark):
    rng = random.Random(7)
    pairs = [random_composable_space_pair(rng, length=4, depth=4) for _ in range(200)]

    def fold():
        return [compose(s, t) for s, t, *_ in pairs]

    composed = benchmark(fold)
    benchmark.extra_info["pairs"] = len(pairs)
    assert all(height(c) <= max(height(s), height(t))
               for c, (s, t, *_rest) in zip(composed, pairs))


if __name__ == "__main__":
    sys.exit(harness.main("composition", build_suite))
