"""Experiment: the enforcement-semantics sweep — composition *and* execution.

Grown out of the threesome-versus-``#`` benchmark (the suite keeps its
``threesomes`` name so the artifact stays ``BENCH_threesomes.json`` and old
measurement names remain comparable), this now sweeps the full
:mod:`repro.semantics` registry:

* **composition micro-benchmarks** (the original §6.1 experiment): folding
  long boundary chains and random composable pairs with ``∘`` versus ``#``,
  asserting identical results through the representation map;
* **full engine comparison**: the λS CEK machine and the bytecode VM run the
  boundary workloads under every registered semantics.  The Natural pair
  (``coercion``, ``threesome``) must agree on every observable with
  *identical* pending footprints (``check_mediator_oracle`` asserts the
  whole 4-backend matrix first); Transient and Erasure are the two ends of
  the enforcement spectrum the blame-evaluation literature compares
  Natural against:

  - ``{engine}/erasure_vs_coercion/{workload}`` records the **speed
    ceiling** — what enforcement costs at all (erasure elides every
    mediator at ``-O1+``, so > 1.0 means Natural is paying measurable
    enforcement overhead);
  - ``{engine}/transient_vs_coercion/{workload}`` records the **shallow
    check trade** — tag checks without proxies, whose blame may diverge
    from Natural by design.

  The λS space guarantee is *asserted* for every ``space_bounded`` backend,
  not just recorded: on boundary-heavy workloads the VM must report
  ``max_pending_mediators ≤ 1`` (one composed pending slot per frame), and
  the pure tail loop must report 1 on the CEK machine too (the machine
  holds a short transient second mediator on workloads that return through
  a non-tail cast, so those assert a constant ≤ 2).
"""

from __future__ import annotations

import random
import sys

import pytest

import harness

from repro.compiler import compile_term, run_code
from repro.core.labels import Label
from repro.core.types import DYN, INT
from repro.gen.coercions_gen import random_composable_space_pair
from repro.gen.programs import (
    even_odd_boundary,
    fib_boundary,
    tail_countdown_boundary,
    typed_loop_untyped_step,
)
from repro.lambda_s.coercions import compose
from repro.machine import run_on_machine
from repro.properties.bisimulation import check_mediator_oracle
from repro.semantics import SEMANTICS, SEMANTICS_NAMES
from repro.threesomes import compose_labeled, labeled_of_coercion
from repro.translate.b_to_s import cast_to_space


def _boundary_chain(length: int):
    pieces = []
    for index in range(length):
        pieces.append(cast_to_space(INT, Label(f"in{index}"), DYN))
        pieces.append(cast_to_space(DYN, Label(f"out{index}"), INT))
    return pieces


#: The engine-comparison workloads: (name, λB term, boundary_heavy?,
#: pure_tail?).  The boundary-heavy ones are the λS space story — loops whose
#: pending mediators must stay constant under every space-bounded backend;
#: the pure tail loop additionally keeps a *single* composed pending mediator
#: on both engines (``max_pending_mediators == 1``).
ENGINE_WORKLOADS = [
    ("even_odd_boundary_400", even_odd_boundary(400), True, False),
    ("tail_countdown_400", tail_countdown_boundary(400), True, True),
    ("typed_loop_200", typed_loop_untyped_step(200), True, False),
    ("fib_boundary_13", fib_boundary(13), False, False),
]

#: The two Natural presentations — the original experiment's pair, held to
#: strict observational equality (identical footprints included).
NATURAL = ("coercion", "threesome")


def _compose_microbenchmarks(suite: harness.Suite) -> None:
    pieces = _boundary_chain(200)
    labeled_pieces = [labeled_of_coercion(piece) for piece in pieces]

    def fold_sharp():
        result = pieces[0]
        for piece in pieces[1:]:
            result = compose(result, piece)
        return labeled_of_coercion(result)

    def fold_threesomes():
        result = labeled_pieces[0]
        for piece in labeled_pieces[1:]:
            result = compose_labeled(result, piece)
        return result

    reference = fold_sharp()
    suite.measure("sharp/chain_200", fold_sharp, algorithm="sharp", chain_length=len(pieces))
    suite.measure("threesomes/chain_200", fold_threesomes,
                  check=lambda r: r == reference,
                  algorithm="threesomes", chain_length=len(pieces))

    rng = random.Random(20100117)
    pairs = [random_composable_space_pair(rng, length=3, depth=3) for _ in range(100)]
    labeled_pairs = [(labeled_of_coercion(s), labeled_of_coercion(t)) for s, t, *_ in pairs]

    def run_sharp():
        return [labeled_of_coercion(compose(s, t)) for s, t, *_ in pairs]

    def run_threesomes():
        return [compose_labeled(p, q) for p, q in labeled_pairs]

    reference_pairs = run_sharp()
    suite.measure("sharp/random_100", run_sharp, algorithm="sharp", pairs=len(pairs))
    suite.measure("threesomes/random_100", run_threesomes,
                  check=lambda r: r == reference_pairs,
                  algorithm="threesomes", pairs=len(pairs))


def _engine_comparison(suite: harness.Suite) -> None:
    for name, term, boundary_heavy, pure_tail in ENGINE_WORKLOADS:
        # The whole 4-backend × {machine, vm, rvm} matrix, before timing.
        report = check_mediator_oracle(term)
        assert report.ok, f"{name}: {report.reason}"

        cells: dict[tuple[str, str], harness.Measurement] = {}
        pendings: dict[tuple[str, str], int] = {}

        for backend in SEMANTICS_NAMES:
            outcome = run_on_machine(term, "S", mediator=backend)
            pendings[("machine", backend)] = outcome.stats["max_pending_mediators"]
            cells[("machine", backend)] = suite.measure(
                f"machine/{backend}/{name}",
                lambda backend=backend: run_on_machine(term, "S", mediator=backend),
                check=lambda r, outcome=outcome: r.kind == outcome.kind,
                engine="machine", semantics=backend, workload=name,
                boundary_heavy=boundary_heavy,
                max_pending_mediators=outcome.stats["max_pending_mediators"],
            )

        for backend in SEMANTICS_NAMES:
            code = compile_term(term, mediator=backend)
            outcome = run_code(code)
            pendings[("vm", backend)] = outcome.stats["max_pending_mediators"]
            cells[("vm", backend)] = suite.measure(
                f"vm/{backend}/{name}",
                lambda code=code: run_code(code),
                check=lambda r, outcome=outcome: r.kind == outcome.kind,
                engine="vm", semantics=backend, workload=name,
                boundary_heavy=boundary_heavy,
                max_pending_mediators=outcome.stats["max_pending_mediators"],
            )

        for engine in ("machine", "vm"):
            pending_coercion = pendings[(engine, "coercion")]
            pending_threesome = pendings[(engine, "threesome")]
            # The Natural pair changes only what a pending mediator *is*,
            # so its footprints must be identical, not merely bounded.
            assert pending_coercion == pending_threesome, (
                f"{engine}/{name}: pending footprints diverge across the "
                f"Natural backends ({pending_coercion} vs {pending_threesome})"
            )
            if boundary_heavy:
                # The space guarantee itself, for every space-bounded
                # backend: one pending slot per VM frame; the machine holds
                # a transient second on non-tail returns (constant ≤ 2).
                bound = 1 if (engine == "vm" or pure_tail) else 2
                for backend in SEMANTICS_NAMES:
                    if not SEMANTICS[backend].space_bounded:
                        continue
                    assert pendings[(engine, backend)] <= bound, (
                        f"{engine}/{backend}/{name}: max_pending_mediators "
                        f"{pendings[(engine, backend)]} > {bound}"
                    )
            coercion_best = cells[(engine, "coercion")].best_s
            for backend in ("threesome", "transient", "erasure"):
                # > 1.0 means this backend is faster than coercion; for
                # erasure that ratio is the cost of enforcement itself
                # (the speed ceiling), for transient the shallow-check
                # trade.  The threesome record keeps its historical name.
                suite.record(
                    f"{engine}/{backend}_vs_coercion/{name}",
                    engine=engine, workload=name, boundary_heavy=boundary_heavy,
                    speedup=round(coercion_best / cells[(engine, backend)].best_s, 3),
                    pending_coercion=pending_coercion,
                    pending_backend=pendings[(engine, backend)],
                    pending_equal_backends=(
                        pendings[(engine, backend)] == pending_coercion
                    ),
                    blames=SEMANTICS[backend].blames,
                )


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("threesomes", repeat)
    _compose_microbenchmarks(suite)
    _engine_comparison(suite)
    return suite


@pytest.mark.benchmark(group="threesomes-vs-sharp-chain")
@pytest.mark.parametrize("algorithm", ["sharp", "threesomes"])
def test_chain_composition(benchmark, algorithm):
    pieces = _boundary_chain(200)
    labeled_pieces = [labeled_of_coercion(piece) for piece in pieces]

    def fold_sharp():
        result = pieces[0]
        for piece in pieces[1:]:
            result = compose(result, piece)
        return labeled_of_coercion(result)

    def fold_threesomes():
        result = labeled_pieces[0]
        for piece in labeled_pieces[1:]:
            result = compose_labeled(result, piece)
        return result

    result = benchmark(fold_sharp if algorithm == "sharp" else fold_threesomes)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["chain_length"] = len(pieces)
    # Both algorithms compute the same mediating representation.
    assert result == fold_sharp()


@pytest.mark.benchmark(group="threesomes-vs-sharp-random")
@pytest.mark.parametrize("algorithm", ["sharp", "threesomes"])
def test_random_pair_composition(benchmark, algorithm):
    rng = random.Random(20100117)
    pairs = [random_composable_space_pair(rng, length=3, depth=3) for _ in range(100)]
    labeled_pairs = [(labeled_of_coercion(s), labeled_of_coercion(t)) for s, t, *_ in pairs]

    def run_sharp():
        return [labeled_of_coercion(compose(s, t)) for s, t, *_ in pairs]

    def run_threesomes():
        return [compose_labeled(p, q) for p, q in labeled_pairs]

    results = benchmark(run_sharp if algorithm == "sharp" else run_threesomes)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["pairs"] = len(pairs)
    assert results == run_sharp()


@pytest.mark.benchmark(group="mediators-engine")
@pytest.mark.parametrize("semantics", list(SEMANTICS_NAMES))
def test_vm_under_each_semantics(benchmark, semantics):
    term = even_odd_boundary(400)
    code = compile_term(term, mediator=semantics)
    outcome = benchmark(lambda: run_code(code))
    benchmark.extra_info["semantics"] = semantics
    assert outcome.is_value and outcome.python_value() is True


if __name__ == "__main__":
    sys.exit(harness.main("threesomes", build_suite))
