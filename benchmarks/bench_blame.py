"""Experiment: is blame *useful*? The rational-programmer evaluation at scale.

The paper proves λC and λS blame the same label (bisimulation); this suite
asks the question the proof does not answer — whether following that label
actually leads a programmer to a planted fault.  It runs the
:mod:`repro.experiment` driver over the shipped ``.grad`` corpus plus a
seeded generated corpus: for every (program, fault, starting configuration,
semantics) tuple, follow blame across the migration lattice and record
whether the trail localizes the culprit and in how many steps.

The artifact's headline numbers, per enforcement semantics:

* ``localization_rate`` — localized trails over blame-producing trails
  (the acceptance bar: ≥ 0.9 for ``coercion`` and ``threesome``);
* ``mean_trail_length`` — migration steps per trail (how much typing work
  blame saves relative to the null strategy);
* ``blame_records`` — must be 0 for ``erasure``, the null baseline;
* ``configurations_run`` — every one executed through the persistent
  worker pool (the acceptance bar: ≥ 1000 across the sweep).

Standalone usage (writes the ``BENCH_blame.json`` artifact)::

    python benchmarks/bench_blame.py --json
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import pytest

import harness

from repro.experiment import ExperimentConfig, run_experiment
from repro.gen import generate_corpus

#: The shipped surface corpus (multi-binding programs with a main expression).
CORPUS_DIR = Path(__file__).resolve().parent.parent / "examples" / "programs"

#: Acceptance bar: blame-following must localize at least this fraction of
#: blame-producing trails under the natural semantics.
LOCALIZATION_TARGET = 0.9

#: Acceptance bar: lattice configurations executed through the worker pool.
CONFIGURATIONS_TARGET = 1000


def corpus_programs() -> list[tuple[str, str]]:
    return [(p.name, p.read_text()) for p in sorted(CORPUS_DIR.glob("*.grad"))]


def experiment_config(seed: int, workers: int = 2) -> ExperimentConfig:
    return ExperimentConfig(
        semantics=("coercion", "threesome", "transient", "erasure"),
        workers=workers,
        max_configs=32,
        starts_per_fault=4,
        faults_per_program=4,
        seed=seed,
    )


def build_suite(repeat: int, seed: int = harness.DEFAULT_SEED) -> harness.Suite:
    suite = harness.Suite("blame", repeat=repeat)
    programs = corpus_programs() + generate_corpus(16, seed=seed, bindings=5)
    config = experiment_config(seed)

    started = time.perf_counter()
    trails, report = run_experiment(programs, config)
    elapsed = time.perf_counter() - started

    suite.record(
        "experiment",
        wall_s=round(elapsed, 3),
        programs=len(programs),
        workers=config.workers,
        trails=report["trails"],
        configurations_run=report["configurations_run"],
        configurations_target=CONFIGURATIONS_TARGET,
    )
    for name, bucket in sorted(report["semantics"].items()):
        suite.record(
            f"semantics:{name}",
            strategy=bucket["strategy"],
            trails=bucket["trails"],
            blame_trails=bucket["blame_trails"],
            localized=bucket["localized"],
            localization_rate=round(bucket["localization_rate"], 4),
            mean_trail_length=round(bucket["mean_trail_length"], 4),
            blame_records=bucket["blame_records"],
            configurations_run=bucket["configurations_run"],
            outcomes=bucket["outcomes"],
        )

    # The acceptance bars, checked in-process so the artifact cannot be
    # written from a run that silently failed them.
    assert report["configurations_run"] >= CONFIGURATIONS_TARGET, (
        f"only {report['configurations_run']} configurations ran "
        f"(target {CONFIGURATIONS_TARGET})"
    )
    for name in ("coercion", "threesome"):
        rate = report["semantics"][name]["localization_rate"]
        assert rate >= LOCALIZATION_TARGET, (
            f"{name} localized only {rate:.1%} of blame-producing trails"
        )
    assert report["semantics"]["erasure"]["blame_records"] == 0
    return suite


# ---------------------------------------------------------------------------
# pytest entry point (pytest benchmarks/bench_blame.py) — a scaled-down
# smoke sweep, inline, so the suite stays fast under plain pytest.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semantics", ["coercion", "erasure"])
def test_experiment_smoke(semantics, tmp_path):
    programs = generate_corpus(2, seed=harness.DEFAULT_SEED, bindings=4)
    config = ExperimentConfig(
        semantics=(semantics,),
        workers=0,
        max_configs=8,
        starts_per_fault=2,
        faults_per_program=2,
        seed=harness.DEFAULT_SEED,
    )
    trails, report = run_experiment(programs, config)
    assert report["trails"] == len(trails) > 0
    bucket = report["semantics"][semantics]
    if semantics == "erasure":
        assert bucket["blame_records"] == 0
    else:
        assert bucket["localization_rate"] >= LOCALIZATION_TARGET


if __name__ == "__main__":
    sys.exit(harness.main("blame", build_suite))
