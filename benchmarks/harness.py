"""Shared benchmark harness: timing, tables, and ``BENCH_<name>.json`` artifacts.

Every ``bench_*.py`` in this directory is both a pytest-benchmark module and
a standalone script built on this harness::

    python benchmarks/bench_interpreters.py            # print a table
    python benchmarks/bench_interpreters.py --json     # also write BENCH_interpreters.json

The JSON artifacts are the repo's performance trajectory: each records the
machine, the measurements (best/mean seconds plus per-measurement metadata
such as speedups and space statistics), so successive PRs can be compared
number by number.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

# Make `repro` importable when run as a plain script from the repo root.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@dataclass
class Measurement:
    """One timed (or derived) quantity."""

    name: str
    best_s: float | None = None
    mean_s: float | None = None
    runs: int = 0
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload: dict = {"name": self.name, "runs": self.runs}
        if self.best_s is not None:
            payload["best_s"] = self.best_s
            payload["mean_s"] = self.mean_s
        payload.update(self.meta)
        return payload


class Suite:
    """A named collection of measurements with a uniform CLI and JSON shape."""

    def __init__(self, name: str, repeat: int = 5):
        self.name = name
        self.repeat = repeat
        self.measurements: list[Measurement] = []

    def measure(
        self,
        name: str,
        fn: Callable[[], object],
        repeat: int | None = None,
        check: Callable[[object], bool] | None = None,
        **meta,
    ) -> Measurement:
        """Time ``fn`` (one warmup + ``repeat`` timed runs) and record it."""
        repeat = repeat or self.repeat
        result = fn()  # warmup, and the value used for the correctness check
        if check is not None and not check(result):
            raise AssertionError(f"benchmark {self.name}/{name}: check failed on {result!r}")
        timings = []
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        measurement = Measurement(
            name,
            best_s=min(timings),
            mean_s=sum(timings) / len(timings),
            runs=repeat,
            meta=meta,
        )
        self.measurements.append(measurement)
        return measurement

    def record(self, name: str, **meta) -> Measurement:
        """Record a derived, untimed quantity (a ratio, a space statistic)."""
        measurement = Measurement(name, meta=meta)
        self.measurements.append(measurement)
        return measurement

    # -- reporting -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "suite": self.name,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "measurements": [m.to_json() for m in self.measurements],
        }

    def print_table(self) -> None:
        print(f"== {self.name} ==")
        width = max((len(m.name) for m in self.measurements), default=10)
        for m in self.measurements:
            if m.best_s is not None:
                timing = f"best {m.best_s * 1e3:9.3f} ms   mean {m.mean_s * 1e3:9.3f} ms"
            else:
                timing = " " * 42
            extras = "  ".join(f"{k}={v}" for k, v in m.meta.items())
            print(f"  {m.name:<{width}}  {timing}  {extras}")


def artifact_path(suite_name: str, explicit: str | None = None) -> Path:
    """Where ``--json`` writes: ``BENCH_<name>.json`` in the repo root by default."""
    if explicit:
        return Path(explicit)
    return Path(__file__).resolve().parent.parent / f"BENCH_{suite_name}.json"


def main(suite_name: str, build: Callable[[int], Suite], argv: list[str] | None = None) -> int:
    """CLI entry point shared by every ``bench_*.py``.

    ``build(repeat)`` runs the experiment and returns the populated suite.
    """
    parser = argparse.ArgumentParser(description=f"benchmark suite {suite_name!r}")
    parser.add_argument("--json", nargs="?", const="", default=None, metavar="PATH",
                        help=f"write BENCH_{suite_name}.json (optionally to PATH)")
    parser.add_argument("--repeat", type=int, default=5, help="timed runs per measurement")
    args = parser.parse_args(argv)

    suite = build(args.repeat)
    suite.print_table()
    if args.json is not None:
        path = artifact_path(suite_name, args.json or None)
        path.write_text(json.dumps(suite.to_json(), indent=2) + "\n")
        print(f"wrote {path}")
    return 0
