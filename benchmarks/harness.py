"""Shared benchmark harness: timing, tables, and ``BENCH_<name>.json`` artifacts.

Every ``bench_*.py`` in this directory is both a pytest-benchmark module and
a standalone script built on this harness::

    python benchmarks/bench_interpreters.py            # print a table
    python benchmarks/bench_interpreters.py --json     # also write BENCH_interpreters.json

The JSON artifacts are the repo's performance trajectory: each records the
machine, the measurements (best/mean seconds plus per-measurement metadata
such as speedups and space statistics), so successive PRs can be compared
number by number.
"""

from __future__ import annotations

import argparse
import inspect
import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

# Make `repro` importable when run as a plain script from the repo root.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@dataclass
class Measurement:
    """One timed (or derived) quantity.

    Timed measurements report the **min** (the least-noise estimate of the
    true cost) and the **median** (robust against a single fast outlier);
    the mean is kept for continuity with older ``BENCH_*.json`` artifacts.
    """

    name: str
    best_s: float | None = None
    mean_s: float | None = None
    median_s: float | None = None
    runs: int = 0
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload: dict = {"name": self.name, "runs": self.runs}
        if self.best_s is not None:
            payload["best_s"] = self.best_s
            payload["mean_s"] = self.mean_s
            payload["median_s"] = self.median_s
        payload.update(self.meta)
        return payload


class Suite:
    """A named collection of measurements with a uniform CLI and JSON shape."""

    def __init__(self, name: str, repeat: int = 5):
        self.name = name
        self.repeat = repeat
        self.measurements: list[Measurement] = []

    def measure(
        self,
        name: str,
        fn: Callable[[], object],
        repeat: int | None = None,
        check: Callable[[object], bool] | None = None,
        **meta,
    ) -> Measurement:
        """Time ``fn`` (one warmup + ``repeat`` timed runs) and record it."""
        repeat = repeat or self.repeat
        result = fn()  # warmup, and the value used for the correctness check
        if check is not None and not check(result):
            raise AssertionError(f"benchmark {self.name}/{name}: check failed on {result!r}")
        timings = []
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            timings.append(time.perf_counter() - start)
        measurement = Measurement(
            name,
            best_s=min(timings),
            mean_s=sum(timings) / len(timings),
            median_s=statistics.median(timings),
            runs=repeat,
            meta=meta,
        )
        self.measurements.append(measurement)
        return measurement

    def record(self, name: str, **meta) -> Measurement:
        """Record a derived, untimed quantity (a ratio, a space statistic)."""
        measurement = Measurement(name, meta=meta)
        self.measurements.append(measurement)
        return measurement

    # -- reporting -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "suite": self.name,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "measurements": [m.to_json() for m in self.measurements],
        }

    def print_table(self) -> None:
        print(f"== {self.name} ==")
        width = max((len(m.name) for m in self.measurements), default=10)
        for m in self.measurements:
            if m.best_s is not None:
                timing = (
                    f"min {m.best_s * 1e3:9.3f} ms   median {m.median_s * 1e3:9.3f} ms"
                )
            else:
                timing = " " * 44
            extras = "  ".join(f"{k}={v}" for k, v in m.meta.items())
            print(f"  {m.name:<{width}}  {timing}  {extras}")


def artifact_path(suite_name: str, explicit: str | None = None) -> Path:
    """Where ``--json`` writes: ``BENCH_<name>.json`` in the repo root by default."""
    if explicit:
        return Path(explicit)
    return Path(__file__).resolve().parent.parent / f"BENCH_{suite_name}.json"


#: Default seed for suites with generated workloads: fixed, so successive
#: ``BENCH_*.json`` artifacts measure the *same* programs run to run (the
#: date the paper was presented at PLDI 2015).
DEFAULT_SEED = 20150613


def main(suite_name: str, build: Callable[..., Suite], argv: list[str] | None = None) -> int:
    """CLI entry point shared by every ``bench_*.py``.

    ``build(repeat)`` runs the experiment and returns the populated suite;
    a suite whose workloads are randomly generated declares a second
    ``seed`` parameter and receives ``--seed`` (default
    :data:`DEFAULT_SEED`, so artifacts are reproducible run to run).
    """
    parser = argparse.ArgumentParser(description=f"benchmark suite {suite_name!r}")
    parser.add_argument("--json", nargs="?", const="", default=None, metavar="PATH",
                        help=f"write BENCH_{suite_name}.json (optionally to PATH)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed runs per measurement (min + median reported)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="RNG seed for generated workloads (fixed by default "
                             "so BENCH artifacts are reproducible)")
    args = parser.parse_args(argv)

    if "seed" in inspect.signature(build).parameters:
        suite = build(args.repeat, seed=args.seed)
    else:
        suite = build(args.repeat)
    suite.print_table()
    if args.json is not None:
        path = artifact_path(suite_name, args.json or None)
        path.write_text(json.dumps(suite.to_json(), indent=2) + "\n")
        print(f"wrote {path}")
    return 0
