"""Experiment: the persistent evaluation service under load and under faults.

The serving PR's claim: keeping workers resident — interned mediator
tables, memoised compositions, hot ``.gradb`` images — makes repeated
evaluation requests cheap (warm p50 far below cold), and the fault
machinery (crash retry, deadlines, shedding) degrades throughput
gracefully rather than dropping or hanging requests.  This suite
quantifies it over a live server subprocess on a Unix socket:

* **cold vs warm** — per-request round-trip latency (p50/p99) for a batch
  of distinct programs against an empty cache, then the same batch again
  (worker-resident images / compile-cache hits).
* **sustained** — single-connection request rate for a warm program, the
  service's steady-state ceiling on one core.
* **degradation** — the same sustained load under increasing
  ``worker_kill`` probability: requests per second and the fraction that
  still terminate as values (retries absorb kills until the retry budget
  runs out; every request still gets exactly one terminal response).

Standalone usage (writes the ``BENCH_serve.json`` artifact)::

    python benchmarks/bench_serve.py --json
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

import harness

from repro.serve.client import ServeClient

_SRC = Path(__file__).resolve().parent.parent / "src"

#: Distinct-but-tiny programs: one per cold request (distinct cache keys).
def _program(index: int) -> str:
    return (
        f"(define (f [x : int]) : int (* x {index + 2}))\n"
        f"(f (: {index + 1} ?))\n"
    )


#: Request counts: enough for stable percentiles, small enough to keep the
#: suite in seconds.
COLD_PROGRAMS = 40
SUSTAINED_REQUESTS = 150

#: The degradation curve's fault axis.
KILL_PROBS = (0.0, 0.1, 0.3)


class _Server:
    """A serve subprocess on a Unix socket with an isolated cache."""

    def __init__(self, *extra_args: str, faults: str | None = None):
        self.root = Path(tempfile.mkdtemp(prefix="bench-serve-"))
        env = dict(
            os.environ,
            PYTHONPATH=str(_SRC),
            REPRO_GRADUAL_CACHE_DIR=str(self.root / "cache"),
        )
        if faults:
            env["REPRO_GRADUAL_FAULTS"] = faults
        else:
            env.pop("REPRO_GRADUAL_FAULTS", None)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", str(self.root / "serve.sock"), *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True,
        )
        self.ready = json.loads(self.proc.stdout.readline())

    def client(self) -> ServeClient:
        return ServeClient.from_ready(self.ready)

    def close(self) -> None:
        try:
            with self.client() as client:
                client.shutdown()
            self.proc.wait(timeout=30)
        finally:
            if self.proc.poll() is None:
                self.proc.kill()
            shutil.rmtree(self.root, ignore_errors=True)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latency_sweep(client: ServeClient, sources: list[str]) -> list[float]:
    latencies = []
    for source in sources:
        start = time.perf_counter()
        result = client.run(source)
        latencies.append(time.perf_counter() - start)
        assert result["kind"] == "value", result
    return latencies


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("serve", repeat=repeat)
    sources = [_program(i) for i in range(COLD_PROGRAMS)]

    server = _Server()
    try:
        with server.client() as client:
            cold = _latency_sweep(client, sources)
            warm = _latency_sweep(client, sources)
            suite.record(
                "latency/cold",
                p50_s=_percentile(cold, 0.50), p99_s=_percentile(cold, 0.99),
                requests=len(cold),
            )
            suite.record(
                "latency/warm",
                p50_s=_percentile(warm, 0.50), p99_s=_percentile(warm, 0.99),
                requests=len(warm),
                speedup_p50=round(_percentile(cold, 0.5) / _percentile(warm, 0.5), 2),
            )

            # Steady state: one warm program, back to back.
            hot = sources[0]
            client.run(hot)
            start = time.perf_counter()
            for _ in range(SUSTAINED_REQUESTS):
                client.run(hot)
            elapsed = time.perf_counter() - start
            suite.record(
                "sustained/warm",
                req_per_s=round(SUSTAINED_REQUESTS / elapsed, 1),
                requests=SUSTAINED_REQUESTS,
            )
    finally:
        server.close()

    # Degradation under injected worker kills: throughput falls (respawns
    # and retries cost time), but every request terminates.
    for prob in KILL_PROBS:
        server = _Server("--retries", "2",
                         faults=f"worker_kill:{prob}" if prob else None)
        try:
            with server.client() as client:
                hot = _program(0)
                client.run(hot)  # prime the cache (first kill hits here too)
                outcomes = {"value": 0}
                start = time.perf_counter()
                for _ in range(SUSTAINED_REQUESTS):
                    result = client.run(hot)
                    kind = result["kind"]
                    outcomes[kind] = outcomes.get(kind, 0) + 1
                elapsed = time.perf_counter() - start
            suite.record(
                f"degradation/kill-{prob}",
                req_per_s=round(SUSTAINED_REQUESTS / elapsed, 1),
                value_fraction=round(outcomes["value"] / SUSTAINED_REQUESTS, 3),
                outcomes=outcomes,
                kill_prob=prob,
            )
        finally:
            server.close()
    return suite


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/bench_serve.py)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def warm_server():
    server = _Server()
    client = server.client()
    client.run(_program(0))  # prime
    yield client
    client.close()
    server.close()


@pytest.mark.benchmark(group="serve-warm")
def test_warm_request_round_trip(benchmark, warm_server):
    result = benchmark(lambda: warm_server.run(_program(0)))
    assert result["kind"] == "value"
    assert result["cache"] in ("warm", "hit")


if __name__ == "__main__":
    sys.exit(harness.main("serve", build_suite))
