"""Experiment: the bytecode VM versus the CEK machine — and the optimizer
versus its own ``-O0`` baseline.

The compiler PR's claim: lowering elaborated λS terms to a flat bytecode —
coercions pre-interned, variables resolved to frame slots, dispatch on small
ints — beats the tree-walking CEK machine while preserving the λS space
guarantee.  The optimizer PR's claim on top: moving mediator work to compile
time (identity elision, static pre-composition with ``#``/``∘``) and
shrinking the dispatch stream (peephole superinstructions, inline mediator
caches) buys ≥ 1.5× again over the unoptimized VM on the boundary/tail
workloads.  This suite quantifies all three axes:

* **time** — for each workload it times the λS CEK machine, the ``-O0`` VM,
  the ``-O2`` VM, and the ``-O2`` **register VM** (packed-stream dispatch
  over the register IR) on the same program (compilation excluded; measured
  separately) and records the speedups.  Acceptance bars: VM ≥ 1.5× over
  the machine per boundary workload (the PR-2 bar, still enforced),
  ``-O2`` ≥ 1.5× **geomean** over ``-O0`` across the boundary/tail
  workloads (the optimizer bar), and the register VM ≥ 2× geomean over the
  ``-O2`` stack VM on the same boundary/tail workloads (the register-IR
  bar).
* **ablation** — every workload × optimization level (O0/O1/O2) × mediator
  backend (coercion/threesome) × VM (stack/register), so the artifact shows
  where the win comes from: O1 is the static mediator work, O2 adds fusion
  + inline caches, the register rows isolate what dropping the operand
  stack and the instruction objects buys on top.
* **space** — ``max_pending_mediators`` stays constant (≤ 1, composed never
  stacked) on the boundary tail loops at every level; the optimizer may
  only *shrink* the footprint (an elided identity never runs); the register
  VM reproduces the stack VM's footprint exactly.

Standalone usage (writes the ``BENCH_vm.json`` artifact)::

    python benchmarks/bench_vm.py --json
"""

from __future__ import annotations

import math
import sys

import pytest

import harness

from repro.compiler import compile_registers, compile_term, run_code, run_rcode
from repro.gen.programs import (
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    let_chain_boundary,
    tail_countdown_boundary,
    typed_loop_untyped_step,
)
from repro.machine import run_on_machine

#: name -> (λB term, correctness check, is a tail-loop/boundary workload)
VM_WORKLOADS = {
    "even_odd_400": (even_odd_boundary(400), lambda v: v is even_odd_expected(400), True),
    "typed_loop_300": (typed_loop_untyped_step(300), lambda v: v == 0, True),
    "tail_countdown_400": (tail_countdown_boundary(400), lambda v: v is True, True),
    "let_chain_200": (let_chain_boundary(200), lambda v: v == 200, False),
    "fib_12": (fib_boundary(12), lambda v: v == fib_expected(12), False),
}

SPEEDUP_TARGET = 1.5
OPT_SPEEDUP_TARGET = 1.5  # -O2 vs -O0, geomean over boundary/tail workloads
RVM_SPEEDUP_TARGET = 2.0  # rvm vs -O2 stack VM, geomean over boundary/tail

OPT_LEVELS = (0, 1, 2)
MEDIATORS = ("coercion", "threesome")


def geomean(values: list[float]) -> float:
    return math.exp(sum(map(math.log, values)) / len(values))


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("vm", repeat)
    opt_ratios_boundary: list[float] = []
    rvm_ratios_boundary: list[float] = []
    for name, (term_b, check, boundary) in VM_WORKLOADS.items():
        suite.measure(
            f"compile/{name}",
            lambda term_b=term_b: compile_term(term_b),
            workload=name, stage="compile",
        )
        code_o0 = compile_term(term_b, opt_level=0)
        code_o2 = compile_term(term_b, opt_level=2)
        suite.measure(
            f"compile/registers/{name}",
            lambda code_o2=code_o2: compile_registers(code_o2),
            workload=name, stage="regalloc",
        )
        rcode_o2 = compile_registers(code_o2)
        machine = suite.measure(
            f"machine/S/{name}",
            lambda term_b=term_b: run_on_machine(term_b, "S"),
            check=lambda outcome, check=check: outcome.is_value and check(outcome.python_value()),
            engine="machine", workload=name,
        )
        stats_box: dict = {}

        def vm_check(outcome, check=check, stats_box=stats_box, key="stats"):
            stats_box[key] = outcome.stats  # reuse the warmup run's stats
            return outcome.is_value and check(outcome.python_value())

        vm_o0 = suite.measure(
            f"vm/S/O0/{name}",
            lambda code=code_o0: run_code(code),
            check=lambda outcome: vm_check(outcome, key="o0"),
            engine="vm", opt_level=0, workload=name,
        )
        vm_o2 = suite.measure(
            f"vm/S/O2/{name}",
            lambda code=code_o2: run_code(code),
            check=lambda outcome: vm_check(outcome, key="o2"),
            engine="vm", opt_level=2, workload=name,
        )
        rvm_o2 = suite.measure(
            f"rvm/S/O2/{name}",
            lambda rcode=rcode_o2: run_rcode(rcode),
            check=lambda outcome: vm_check(outcome, key="rvm"),
            engine="rvm", opt_level=2, workload=name,
        )
        opt_ratio = vm_o0.best_s / vm_o2.best_s
        rvm_ratio = vm_o2.best_s / rvm_o2.best_s
        if boundary:
            opt_ratios_boundary.append(opt_ratio)
            rvm_ratios_boundary.append(rvm_ratio)
        suite.record(
            f"speedup/{name}",
            vm_vs_machine=round(machine.best_s / vm_o2.best_s, 2),
            o2_vs_o0=round(opt_ratio, 2),
            rvm_vs_o2=round(rvm_ratio, 2),
            tail_loop_or_boundary=boundary,
            meets_target=machine.best_s / vm_o2.best_s >= SPEEDUP_TARGET,
            workload=name,
        )
        stats_o0, stats_o2 = stats_box["o0"], stats_box["o2"]
        stats_rvm = stats_box["rvm"]
        assert stats_o2["max_pending_mediators"] <= stats_o0["max_pending_mediators"], (
            f"{name}: -O2 grew the pending-mediator footprint"
        )
        assert stats_rvm["max_pending_mediators"] == stats_o2["max_pending_mediators"], (
            f"{name}: the register VM changed the pending-mediator footprint"
        )
        suite.record(
            f"space/{name}",
            max_pending_mediators=stats_o2["max_pending_mediators"],
            max_pending_size=stats_o2["max_pending_size"],
            max_kont_depth=stats_o2["max_kont_depth"],
            vm_instructions=stats_o2["steps"],
            vm_instructions_o0=stats_o0["steps"],
            rvm_instructions=stats_rvm["steps"],
            max_pending_mediators_o0=stats_o0["max_pending_mediators"],
            max_pending_mediators_rvm=stats_rvm["max_pending_mediators"],
            workload=name,
        )

    # The optimizer acceptance bar: -O2 over -O0, geomean on boundary/tail.
    opt_geomean = geomean(opt_ratios_boundary)
    suite.record(
        "speedup/opt_geomean_boundary",
        o2_vs_o0_geomean=round(opt_geomean, 3),
        target=OPT_SPEEDUP_TARGET,
        meets_target=opt_geomean >= OPT_SPEEDUP_TARGET,
        workloads=[n for n, (_, _, b) in VM_WORKLOADS.items() if b],
    )

    # The register-IR acceptance bar: rvm over the -O2 stack VM, geomean on
    # the same boundary/tail workloads.
    rvm_geomean = geomean(rvm_ratios_boundary)
    suite.record(
        "speedup/rvm_geomean_boundary",
        rvm_vs_o2_geomean=round(rvm_geomean, 3),
        target=RVM_SPEEDUP_TARGET,
        meets_target=rvm_geomean >= RVM_SPEEDUP_TARGET,
        workloads=[n for n, (_, _, b) in VM_WORKLOADS.items() if b],
    )

    # Ablation: every workload × opt level × mediator backend × VM.
    for name, (term_b, check, boundary) in VM_WORKLOADS.items():
        for mediator in MEDIATORS:
            for level in OPT_LEVELS:
                code = compile_term(term_b, mediator=mediator, opt_level=level)
                suite.measure(
                    f"ablation/{name}/{mediator}/O{level}",
                    lambda code=code: run_code(code),
                    check=lambda outcome, check=check: (
                        outcome.is_value and check(outcome.python_value())
                    ),
                    workload=name, mediator=mediator, opt_level=level,
                    tail_loop_or_boundary=boundary,
                )
                rcode = compile_registers(code)
                suite.measure(
                    f"ablation/{name}/{mediator}/rvm/O{level}",
                    lambda rcode=rcode: run_rcode(rcode),
                    check=lambda outcome, check=check: (
                        outcome.is_value and check(outcome.python_value())
                    ),
                    workload=name, mediator=mediator, opt_level=level,
                    engine="rvm", tail_loop_or_boundary=boundary,
                )
    return suite


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/bench_vm.py)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="vm-throughput")
@pytest.mark.parametrize("opt_level", [0, 2], ids=["O0", "O2"])
@pytest.mark.parametrize("name", sorted(VM_WORKLOADS))
def test_vm_throughput(benchmark, name, opt_level):
    term_b, check, _ = VM_WORKLOADS[name]
    code = compile_term(term_b, opt_level=opt_level)

    def run():
        return run_code(code)

    outcome = benchmark(run)
    assert outcome.is_value and check(outcome.python_value())
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["opt_level"] = opt_level
    benchmark.extra_info["vm_instructions"] = outcome.stats["steps"]
    benchmark.extra_info["max_pending_mediators"] = outcome.stats["max_pending_mediators"]


@pytest.mark.benchmark(group="rvm-throughput")
@pytest.mark.parametrize("name", sorted(VM_WORKLOADS))
def test_rvm_throughput(benchmark, name):
    term_b, check, _ = VM_WORKLOADS[name]
    rcode = compile_registers(compile_term(term_b, opt_level=2))

    def run():
        return run_rcode(rcode)

    outcome = benchmark(run)
    assert outcome.is_value and check(outcome.python_value())
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["rvm_instructions"] = outcome.stats["steps"]
    benchmark.extra_info["max_pending_mediators"] = outcome.stats["max_pending_mediators"]


@pytest.mark.benchmark(group="vm-compile")
@pytest.mark.parametrize("name", sorted(VM_WORKLOADS))
def test_compile_throughput(benchmark, name):
    term_b, _, _ = VM_WORKLOADS[name]
    code = benchmark(lambda: compile_term(term_b))
    assert code.instructions
    benchmark.extra_info["workload"] = name


if __name__ == "__main__":
    sys.exit(harness.main("vm", build_suite))
