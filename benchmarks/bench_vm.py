"""Experiment: the bytecode VM versus the CEK machine (and the oracle).

The compiler PR's claim: lowering elaborated λS terms to a flat bytecode —
coercions pre-interned, variables resolved to frame slots, dispatch on small
ints — beats the tree-walking CEK machine while preserving the λS space
guarantee.  This suite quantifies both halves:

* **time** — for each workload it times the λS CEK machine and the VM on the
  same program (compilation excluded; it is measured separately) and records
  the speedup.  The acceptance bar is ≥ 1.5× on the tail-loop and boundary
  workloads; at the time of writing the VM wins by 2–13×.
* **space** — it records the VM's ``max_pending_mediators``: constant (one
  composed pending coercion) on the boundary tail loops regardless of the
  iteration count, because ``COMPOSE`` merges result coercions into the live
  frame's single pending slot instead of stacking frames.

Standalone usage (writes the ``BENCH_vm.json`` artifact)::

    python benchmarks/bench_vm.py --json
"""

from __future__ import annotations

import sys

import pytest

import harness

from repro.compiler import compile_term, run_code
from repro.gen.programs import (
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    let_chain_boundary,
    tail_countdown_boundary,
    typed_loop_untyped_step,
)
from repro.machine import run_on_machine

#: name -> (λB term, correctness check, is a tail-loop/boundary workload)
VM_WORKLOADS = {
    "even_odd_400": (even_odd_boundary(400), lambda v: v is even_odd_expected(400), True),
    "typed_loop_300": (typed_loop_untyped_step(300), lambda v: v == 0, True),
    "tail_countdown_400": (tail_countdown_boundary(400), lambda v: v is True, True),
    "let_chain_200": (let_chain_boundary(200), lambda v: v == 200, False),
    "fib_12": (fib_boundary(12), lambda v: v == fib_expected(12), False),
}

SPEEDUP_TARGET = 1.5


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("vm", repeat)
    for name, (term_b, check, boundary) in VM_WORKLOADS.items():
        suite.measure(
            f"compile/{name}",
            lambda term_b=term_b: compile_term(term_b),
            workload=name, stage="compile",
        )
        code = compile_term(term_b)
        machine = suite.measure(
            f"machine/S/{name}",
            lambda term_b=term_b: run_on_machine(term_b, "S"),
            check=lambda outcome, check=check: outcome.is_value and check(outcome.python_value()),
            engine="machine", workload=name,
        )
        stats_box: dict = {}

        def vm_check(outcome, check=check, stats_box=stats_box):
            stats_box["stats"] = outcome.stats  # reuse the warmup run's stats
            return outcome.is_value and check(outcome.python_value())

        vm = suite.measure(
            f"vm/S/{name}",
            lambda code=code: run_code(code),
            check=vm_check,
            engine="vm", workload=name,
        )
        stats = stats_box["stats"]
        suite.record(
            f"speedup/{name}",
            vm_vs_machine=round(machine.best_s / vm.best_s, 2),
            tail_loop_or_boundary=boundary,
            meets_target=machine.best_s / vm.best_s >= SPEEDUP_TARGET,
            workload=name,
        )
        suite.record(
            f"space/{name}",
            max_pending_mediators=stats["max_pending_mediators"],
            max_pending_size=stats["max_pending_size"],
            max_kont_depth=stats["max_kont_depth"],
            vm_instructions=stats["steps"],
            workload=name,
        )
    return suite


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/bench_vm.py)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="vm-throughput")
@pytest.mark.parametrize("name", sorted(VM_WORKLOADS))
def test_vm_throughput(benchmark, name):
    term_b, check, _ = VM_WORKLOADS[name]
    code = compile_term(term_b)

    def run():
        return run_code(code)

    outcome = benchmark(run)
    assert outcome.is_value and check(outcome.python_value())
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["vm_instructions"] = outcome.stats["steps"]
    benchmark.extra_info["max_pending_mediators"] = outcome.stats["max_pending_mediators"]


@pytest.mark.benchmark(group="vm-compile")
@pytest.mark.parametrize("name", sorted(VM_WORKLOADS))
def test_compile_throughput(benchmark, name):
    term_b, _, _ = VM_WORKLOADS[name]
    code = benchmark(lambda: compile_term(term_b))
    assert code.instructions
    benchmark.extra_info["workload"] = name


if __name__ == "__main__":
    sys.exit(harness.main("vm", build_suite))
