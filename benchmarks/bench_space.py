"""Experiment: space behaviour of boundary-crossing tail calls (Section 1).

This is the paper's motivating quantitative claim, inherited from Herman et
al. (2007, 2010): with a naive treatment of casts, two mutually recursive
procedures — one typed, one untyped — whose calls are in tail position need
space proportional to the number of calls, because the mediating casts pile
up; the space-efficient calculus λS merges pending coercions with ``#`` and
runs the same program in constant space.

Each benchmark runs the ``even/odd`` workload at a given size on one of the
three machines, times it, and records the space statistics (maximum number
and total size of pending mediators) in ``extra_info`` so the series can be
read straight out of the benchmark report:

    pytest benchmarks/bench_space.py --benchmark-only --benchmark-columns=mean

Expected shape (reproducing the paper/Herman et al.):

* λB, λC: ``max_pending_mediators`` ≈ n + 1 — linear growth;
* λS: ``max_pending_mediators`` = 2 — constant, independent of n;
* the all-typed control also runs in constant space, showing λS restores
  proper tail calls rather than merely shifting constants.
"""

from __future__ import annotations

import sys

import pytest

import harness

from repro.gen.programs import even_odd_all_typed, even_odd_boundary, even_odd_expected
from repro.machine import run_on_machine
from repro.obs import SpaceTimeline, tracing

SIZES = (50, 200, 800)


def _timeline_series(n: int, calculus: str) -> dict:
    """One traced run's ``steps × pending`` series — the space figure as data.

    Sanity-checks the tracing contract while it is at it: the traced run's
    outcome and stats must equal the untraced run's, and the series maxima
    must equal the stats' high-water marks.
    """
    untraced = run_on_machine(even_odd_boundary(n), calculus)
    timeline = SpaceTimeline()
    with tracing(timeline):
        outcome = run_on_machine(even_odd_boundary(n), calculus)
    assert outcome.stats == untraced.stats, "tracing perturbed the run"
    series = timeline.series()
    assert series["max_pending_mediators"] == outcome.stats["max_pending_mediators"]
    return series


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("space", repeat)
    for n in SIZES:
        for calculus in ("B", "C", "S"):
            outcome = run_on_machine(even_odd_boundary(n), calculus)
            assert outcome.is_value and outcome.python_value() == even_odd_expected(n)
            stats = outcome.stats
            suite.measure(
                f"even_odd/{calculus}/n{n}",
                lambda n=n, calculus=calculus: run_on_machine(even_odd_boundary(n), calculus),
                calculus=calculus, n=n,
                max_pending_mediators=stats["max_pending_mediators"],
                max_pending_size=stats["max_pending_size"],
                max_kont_depth=stats["max_kont_depth"],
                steps=stats["steps"],
            )
            # The exported timeline: bounded for λS, linear for λB/λC —
            # the paper's figure, reproducible straight from the JSON.
            series = _timeline_series(n, calculus)
            if calculus == "S":
                assert series["max_pending_mediators"] <= 4
            else:
                assert series["max_pending_mediators"] >= n
            suite.record(
                f"timeline/even_odd/{calculus}/n{n}",
                calculus=calculus, n=n, timeline=series,
            )
        control = run_on_machine(even_odd_all_typed(n), "B")
        suite.record(
            f"control/all_typed/n{n}",
            n=n,
            max_pending_mediators=control.stats["max_pending_mediators"],
        )
    return suite


def _run_and_check(n: int, calculus: str):
    outcome = run_on_machine(even_odd_boundary(n), calculus)
    assert outcome.is_value and outcome.python_value() == even_odd_expected(n)
    return outcome


@pytest.mark.benchmark(group="space-even-odd")
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("calculus", ["B", "C", "S"])
def test_even_odd_space(benchmark, calculus, n):
    outcome = benchmark(_run_and_check, n, calculus)
    stats = outcome.stats
    benchmark.extra_info["calculus"] = calculus
    benchmark.extra_info["n"] = n
    benchmark.extra_info["max_pending_mediators"] = stats["max_pending_mediators"]
    benchmark.extra_info["max_pending_size"] = stats["max_pending_size"]
    benchmark.extra_info["max_kont_depth"] = stats["max_kont_depth"]
    # The shape assertions that reproduce the paper's claim.
    if calculus == "S":
        assert stats["max_pending_mediators"] <= 4
    else:
        assert stats["max_pending_mediators"] >= n


@pytest.mark.benchmark(group="space-even-odd-control")
@pytest.mark.parametrize("n", (200, 800))
def test_all_typed_control_space(benchmark, n):
    """The fully typed control: no boundary, no pending mediators anywhere."""

    def run():
        return run_on_machine(even_odd_all_typed(n), "B")

    outcome = benchmark(run)
    assert outcome.is_value
    benchmark.extra_info["n"] = n
    benchmark.extra_info["max_pending_mediators"] = outcome.stats["max_pending_mediators"]
    assert outcome.stats["max_pending_mediators"] == 0


@pytest.mark.benchmark(group="space-small-step")
@pytest.mark.parametrize("calculus", ["B", "S"])
def test_small_step_term_growth(benchmark, calculus):
    """The same phenomenon observed on the paper-faithful small-step semantics:
    the maximum term size along the trace grows with n in λB and is flat in λS."""
    from repro.core.terms import term_size
    from repro.lambda_b.reduction import trace as trace_b
    from repro.lambda_s.reduction import trace as trace_s
    from repro.translate import b_to_s

    n = 24

    def measure():
        program = even_odd_boundary(n)
        if calculus == "B":
            return max(term_size(t) for t in trace_b(program, 100_000))
        return max(term_size(t) for t in trace_s(b_to_s(program), 100_000))

    peak = benchmark(measure)
    benchmark.extra_info["calculus"] = calculus
    benchmark.extra_info["n"] = n
    benchmark.extra_info["max_term_size"] = peak
    if calculus == "S":
        assert peak < 100
    else:
        assert peak > n


if __name__ == "__main__":
    sys.exit(harness.main("space", build_suite))
