"""Experiment: compile-once/run-many — the ``.gradb`` compile cache and the
batch runner.

The serialization PR's claim: a ``run`` that hits the content-addressed
compile cache deserializes a ``.gradb`` image instead of re-running the
whole parse → type check → elaborate → translate → lower → optimize
pipeline, and that warm start is ≥ :data:`WARM_SPEEDUP_TARGET`× faster
end-to-end over the shipped example corpus.  This suite quantifies it:

* **cold vs warm** — per program and for the whole corpus, the end-to-end
  ``run_source`` time against an empty cache (compile + store + run) and
  against a primed one (load + run).  The corpus-level ratio is the
  acceptance bar; per-program ratios show where the win lives (the
  compile-bound library programs) and where it cannot (``tail_loop`` is
  execution-bound, so caching its compilation moves little).
* **image load** — deserialize time per program, the warm path's overhead
  over a bare ``run_code``.
* **batch runner** — wall time for the corpus under ``run_batch`` with a
  cold cache, a warm cache, and 1 vs N workers (worker dispatch ships
  serialized images to a ``multiprocessing`` pool; on a single-core
  runner the extra workers buy nothing and the artifact records that
  honestly).

Standalone usage (writes the ``BENCH_batch.json`` artifact)::

    python benchmarks/bench_batch.py --json
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

import pytest

import harness

from repro.batch import run_batch
from repro.compiler import compile_term, deserialize_image, serialize_image
from repro.surface.interp import compile_source, run_source

#: The shipped example corpus (every surface program in examples/programs).
CORPUS_DIR = Path(__file__).resolve().parent.parent / "examples" / "programs"

#: Corpus-wide warm-vs-cold end-to-end bar (the PR's acceptance criterion).
WARM_SPEEDUP_TARGET = 5.0


def corpus_programs() -> list[Path]:
    return sorted(CORPUS_DIR.glob("*.grad"))


class _CacheDirs:
    """Fresh-per-call and persistent cache directories under one tmp root."""

    def __init__(self) -> None:
        self.root = Path(tempfile.mkdtemp(prefix="bench-batch-"))
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        path = self.root / f"cold-{self._counter}"
        shutil.rmtree(path, ignore_errors=True)
        return str(path)

    def warm(self) -> str:
        return str(self.root / "warm")

    def cleanup(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("batch", repeat)
    dirs = _CacheDirs()
    try:
        programs = corpus_programs()
        sources = {p.name: p.read_text() for p in programs}

        # Prime the warm cache (and sanity-check every outcome once).
        for name, source in sources.items():
            run_source(source, engine="vm", cache=True, cache_dir=dirs.warm())

        # Per-program image load time: the warm path's only real work
        # besides executing.
        for name, source in sources.items():
            term, ty = compile_source(source)
            data = serialize_image(compile_term(term), static_type=ty)
            suite.measure(
                f"load/{name}",
                lambda data=data: deserialize_image(data),
                program=name, image_bytes=len(data), stage="load",
            )

        # Cold vs warm end-to-end, per program.
        speedups = {}
        for name, source in sources.items():
            cold = suite.measure(
                f"cold/{name}",
                lambda source=source: run_source(
                    source, engine="vm", cache=True, cache_dir=dirs.fresh()
                ),
                program=name, cache="cold",
            )
            warm = suite.measure(
                f"warm/{name}",
                lambda source=source: run_source(
                    source, engine="vm", cache=True, cache_dir=dirs.warm()
                ),
                program=name, cache="warm",
            )
            speedups[name] = cold.best_s / warm.best_s
            suite.record(
                f"speedup/{name}",
                warm_vs_cold=round(speedups[name], 2),
                program=name,
            )

        # Cold vs warm end-to-end, whole corpus — the acceptance bar.
        def run_corpus(cache_dir: str) -> None:
            for source in sources.values():
                run_source(source, engine="vm", cache=True, cache_dir=cache_dir)

        corpus_cold = suite.measure(
            "corpus/cold", lambda: run_corpus(dirs.fresh()), cache="cold",
            programs=len(sources),
        )
        corpus_warm = suite.measure(
            "corpus/warm", lambda: run_corpus(dirs.warm()), cache="warm",
            programs=len(sources),
        )
        corpus_speedup = corpus_cold.best_s / corpus_warm.best_s
        suite.record(
            "speedup/corpus",
            warm_vs_cold=round(corpus_speedup, 2),
            target=WARM_SPEEDUP_TARGET,
            meets_target=corpus_speedup >= WARM_SPEEDUP_TARGET,
        )
        assert corpus_speedup >= WARM_SPEEDUP_TARGET, (
            f"warm-vs-cold corpus speedup {corpus_speedup:.2f}x is below the "
            f"{WARM_SPEEDUP_TARGET}x bar"
        )

        # The batch runner: cold cache, warm cache, 1 vs N workers.
        corpus_args = dict(fuel=None, mediator="coercion", opt_level=2)
        suite.measure(
            "runner/cold-cache",
            lambda: run_batch([CORPUS_DIR], workers=1,
                              cache_dir=dirs.fresh(), **corpus_args),
            workers=1, cache="cold",
        )
        suite.measure(
            "runner/warm-1-worker",
            lambda: run_batch([CORPUS_DIR], workers=1,
                              cache_dir=dirs.warm(), **corpus_args),
            workers=1, cache="warm",
        )
        import multiprocessing

        n_workers = min(4, max(2, multiprocessing.cpu_count()))
        suite.measure(
            f"runner/warm-{n_workers}-workers",
            lambda: run_batch([CORPUS_DIR], workers=n_workers,
                              cache_dir=dirs.warm(), **corpus_args),
            workers=n_workers, cache="warm", cpus=multiprocessing.cpu_count(),
        )
    finally:
        dirs.cleanup()
    return suite


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/bench_batch.py)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="batch-warm-start")
@pytest.mark.parametrize("cache", ["cold", "warm"])
def test_corpus_warm_start(benchmark, cache, tmp_path):
    programs = corpus_programs()
    sources = [p.read_text() for p in programs]
    warm_dir = str(tmp_path / "warm")
    counter = [0]

    def run():
        if cache == "cold":
            counter[0] += 1
            cache_dir = str(tmp_path / f"cold{counter[0]}")
        else:
            cache_dir = warm_dir
        for source in sources:
            run_source(source, engine="vm", cache=True, cache_dir=cache_dir)

    run()  # prime (and, for cold, absorb first-use costs)
    benchmark(run)
    benchmark.extra_info["cache"] = cache
    benchmark.extra_info["programs"] = len(sources)


if __name__ == "__main__":
    sys.exit(harness.main("batch", build_suite))
