"""Experiment: run-time cost of the three calculi on gradually typed workloads.

The paper argues λS is "implementation-ready": the space discipline should
not make programs slower.  These benchmarks compare the CEK machines of the
three calculi on the boundary workloads (time), and the paper-faithful
small-step reducers on small instances (where λC's composition-splitting and
λS's merging give different step counts but comparable cost).

Expected shape: the three machines are within a small constant factor of one
another on converging workloads, while the λS machine wins asymptotically on
deep boundary recursion because its continuation stays small.
"""

from __future__ import annotations

import pytest

from repro.gen.programs import (
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    twice_boundary,
    typed_loop_untyped_step,
)
from repro.machine import run_on_machine
from repro.properties.calculi import CALCULI
from repro.translate import b_to_c, b_to_s

MACHINE_WORKLOADS = {
    "even_odd_400": (even_odd_boundary(400), lambda v: v is even_odd_expected(400)),
    "fib_12": (fib_boundary(12), lambda v: v == fib_expected(12)),
    "typed_loop_300": (typed_loop_untyped_step(300), lambda v: v == 0),
    "twice_10": (twice_boundary(10), lambda v: v == 12),
}


@pytest.mark.benchmark(group="machine-throughput")
@pytest.mark.parametrize("calculus", ["B", "C", "S"])
@pytest.mark.parametrize("name", sorted(MACHINE_WORKLOADS))
def test_machine_throughput(benchmark, name, calculus):
    program, check = MACHINE_WORKLOADS[name]

    def run():
        return run_on_machine(program, calculus)

    outcome = benchmark(run)
    assert outcome.is_value and check(outcome.python_value())
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["calculus"] = calculus
    benchmark.extra_info["machine_steps"] = outcome.stats["steps"]
    benchmark.extra_info["max_pending_mediators"] = outcome.stats["max_pending_mediators"]


@pytest.mark.benchmark(group="small-step-throughput")
@pytest.mark.parametrize("calculus", ["B", "C", "S"])
def test_small_step_throughput(benchmark, calculus):
    """The literal reduction relations of Figures 1, 3 and 5 on a small instance."""
    program_b = even_odd_boundary(12)
    if calculus == "B":
        term = program_b
    elif calculus == "C":
        term = b_to_c(program_b)
    else:
        term = b_to_s(program_b)
    ops = CALCULI[calculus]

    def run():
        return ops.run(term, 100_000)

    outcome = benchmark(run)
    assert outcome.is_value
    benchmark.extra_info["calculus"] = calculus
    benchmark.extra_info["reduction_steps"] = outcome.steps
