"""Experiment: subst oracle vs CEK machine vs bytecode VM — the three engines.

The paper argues λS is "implementation-ready": the space discipline should
not make programs slower.  This PR goes further and makes the CEK machine —
running on interned types/coercions with the memoised composition ``#`` —
the *primary engine*, keeping the paper-faithful substitution reducers as
the reference oracle.  This suite quantifies that split: for each standard
generated workload and each calculus it times

* the machine engine (``repro.machine``, interning + memoised ``#``),
* the substitution interpreter (the literal rules of Figures 1, 3 and 5),
  and
* for λS, the bytecode VM (``repro.compiler``: flat instructions,
  pre-interned coercion pool, pending-coercion slot) and the register VM
  (``repro.compiler.rvm``: packed word streams, frame-local register file)
  — with the machine-over-subst, vm-over-machine, and rvm-over-vm speedups
  recorded,

on the *same* pre-translated term.  The boundary workloads (``even_odd``,
``typed_loop``, ``fib``) are the composition-heavy ones — every crossing
composes mediating coercions — and are where the memoised ``#`` and the
VM's integer dispatch pay off most.  ``benchmarks/bench_vm.py`` digs into
the VM half in more detail.

Standalone usage (writes the ``BENCH_interpreters.json`` artifact)::

    python benchmarks/bench_interpreters.py --json
"""

from __future__ import annotations

import sys

import pytest

import harness

from repro.gen.programs import (
    even_odd_boundary,
    even_odd_expected,
    fib_boundary,
    fib_expected,
    twice_boundary,
    typed_loop_untyped_step,
)
from repro.compiler import compile_registers, compile_term, run_code, run_rcode
from repro.machine import MACHINES, run_on_machine
from repro.properties.calculi import CALCULI
from repro.translate import b_to_c, b_to_s

MACHINE_WORKLOADS = {
    "even_odd_400": (even_odd_boundary(400), lambda v: v is even_odd_expected(400)),
    "fib_12": (fib_boundary(12), lambda v: v == fib_expected(12)),
    "typed_loop_300": (typed_loop_untyped_step(300), lambda v: v == 0),
    "twice_10": (twice_boundary(10), lambda v: v == 12),
}

#: Workloads sized so the substitution oracle finishes in milliseconds; the
#: boundary (composition-heavy) ones are marked so the artifact can assert
#: the ≥2× speedup target where it matters.
ENGINE_VS_ORACLE_WORKLOADS = {
    "even_odd_60": (even_odd_boundary(60), True),
    "typed_loop_40": (typed_loop_untyped_step(40), True),
    "fib_8": (fib_boundary(8), True),
    "twice_6": (twice_boundary(6), False),
}

SUBST_FUEL = 500_000


def _translated(term_b, calculus: str):
    if calculus == "B":
        return term_b
    if calculus == "C":
        return b_to_c(term_b)
    return b_to_s(term_b)


def build_suite(repeat: int) -> harness.Suite:
    suite = harness.Suite("interpreters", repeat)
    for name, (term_b, heavy) in ENGINE_VS_ORACLE_WORKLOADS.items():
        for calculus in ("B", "C", "S"):
            term = _translated(term_b, calculus)
            machine = MACHINES[calculus]
            m = suite.measure(
                f"machine/{calculus}/{name}",
                lambda machine=machine, term=term: machine.run(term),
                check=lambda outcome: outcome.is_value,
                engine="machine", calculus=calculus, workload=name,
            )
            o = suite.measure(
                f"subst/{calculus}/{name}",
                lambda calculus=calculus, term=term: CALCULI[calculus].run(term, SUBST_FUEL),
                check=lambda outcome: outcome.is_value,
                engine="subst", calculus=calculus, workload=name,
            )
            suite.record(
                f"speedup/{calculus}/{name}",
                speedup=round(o.best_s / m.best_s, 2),
                composition_heavy=heavy,
                calculus=calculus,
                workload=name,
            )
            if calculus == "S":
                code = compile_term(term_b)
                v = suite.measure(
                    f"vm/S/{name}",
                    lambda code=code: run_code(code),
                    check=lambda outcome: outcome.is_value,
                    engine="vm", calculus="S", workload=name,
                )
                rcode = compile_registers(code)
                r = suite.measure(
                    f"rvm/S/{name}",
                    lambda rcode=rcode: run_rcode(rcode),
                    check=lambda outcome: outcome.is_value,
                    engine="rvm", calculus="S", workload=name,
                )
                suite.record(
                    f"speedup_vm/S/{name}",
                    vm_vs_machine=round(m.best_s / v.best_s, 2),
                    vm_vs_subst=round(o.best_s / v.best_s, 2),
                    rvm_vs_machine=round(m.best_s / r.best_s, 2),
                    rvm_vs_vm=round(v.best_s / r.best_s, 2),
                    composition_heavy=heavy,
                    workload=name,
                )
    return suite


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/bench_interpreters.py)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="machine-throughput")
@pytest.mark.parametrize("calculus", ["B", "C", "S"])
@pytest.mark.parametrize("name", sorted(MACHINE_WORKLOADS))
def test_machine_throughput(benchmark, name, calculus):
    program, check = MACHINE_WORKLOADS[name]

    def run():
        return run_on_machine(program, calculus)

    outcome = benchmark(run)
    assert outcome.is_value and check(outcome.python_value())
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["calculus"] = calculus
    benchmark.extra_info["machine_steps"] = outcome.stats["steps"]
    benchmark.extra_info["max_pending_mediators"] = outcome.stats["max_pending_mediators"]


@pytest.mark.benchmark(group="small-step-throughput")
@pytest.mark.parametrize("calculus", ["B", "C", "S"])
def test_small_step_throughput(benchmark, calculus):
    """The literal reduction relations of Figures 1, 3 and 5 on a small instance."""
    program_b = even_odd_boundary(12)
    term = _translated(program_b, calculus)
    ops = CALCULI[calculus]

    def run():
        return ops.run(term, 100_000)

    outcome = benchmark(run)
    assert outcome.is_value
    benchmark.extra_info["calculus"] = calculus
    benchmark.extra_info["reduction_steps"] = outcome.steps


if __name__ == "__main__":
    sys.exit(harness.main("interpreters", build_suite))
