"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in editable mode (``pip install -e .``) on
environments whose setuptools/pip predate full PEP 660 support (for example,
offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
